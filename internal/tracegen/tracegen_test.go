package tracegen

import (
	"bytes"
	"math"
	"testing"

	"twobit/internal/addr"
	"twobit/internal/memtrace"
)

func smallSpec() Spec {
	return Spec{
		Name: "test", Procs: 4, Keys: 256, Skew: 1.0,
		SharedFrac: 0.4, ReadMostlyFrac: 0.8, ReadMostlyWrite: 0.05,
		WriteHeavyWrite: 0.6, PrivateBlocks: 32, PrivateWrite: 0.3, Seed: 7,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := smallSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := func(mut func(*Spec)) Spec {
		s := smallSpec()
		mut(&s)
		return s
	}
	cases := map[string]Spec{
		"zero procs":        bad(func(s *Spec) { s.Procs = 0 }),
		"zero keys":         bad(func(s *Spec) { s.Keys = 0 }),
		"negative skew":     bad(func(s *Spec) { s.Skew = -1 }),
		"frac above 1":      bad(func(s *Spec) { s.SharedFrac = 1.5 }),
		"nan frac":          bad(func(s *Spec) { s.PrivateWrite = math.NaN() }),
		"zero private":      bad(func(s *Spec) { s.PrivateBlocks = 0 }),
		"amp sans period":   bad(func(s *Spec) { s.DiurnalAmp = 0.5 }),
		"flash sans len":    bad(func(s *Spec) { s.FlashEvery = 100 }),
		"flash keys > keys": bad(func(s *Spec) { s.FlashEvery = 100; s.FlashLen = 10; s.FlashKeys = 1 << 20 }),
		"churn sans stride": bad(func(s *Spec) { s.ChurnEvery = 100 }),
		"fs sans blocks":    bad(func(s *Spec) { s.FalseShareFrac = 0.1 }),
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGenDeterminismAndBounds(t *testing.T) {
	a, b := New(smallSpec()), New(smallSpec())
	max := a.Blocks()
	for i := 0; i < 20000; i++ {
		p := i % 4
		ra, rb := a.Next(p), b.Next(p)
		if ra != rb {
			t.Fatalf("same spec diverged at ref %d", i)
		}
		if int(ra.Block) >= max {
			t.Fatalf("ref %v beyond Blocks() = %d", ra.Block, max)
		}
	}
}

func TestGenPerProcStreamsIndependentOfInterleaving(t *testing.T) {
	// Drawing proc-major vs round-robin must give the same per-proc
	// sequences — the property that makes Synthesize ≡ Record.
	major, robin := New(smallSpec()), New(smallSpec())
	const n = 500
	got := make([][]addr.Ref, 4)
	for p := 0; p < 4; p++ {
		for i := 0; i < n; i++ {
			got[p] = append(got[p], major.Next(p))
		}
	}
	for i := 0; i < n; i++ {
		for p := 0; p < 4; p++ {
			if r := robin.Next(p); r != got[p][i] {
				t.Fatalf("interleaving changed proc %d ref %d", p, i)
			}
		}
	}
}

func TestGenSharedPrivateLayout(t *testing.T) {
	s := smallSpec()
	s.FalseShareFrac = 0.1
	s.FalseShareBlocks = 8
	s.FalseShareWrite = 0.5
	g := New(s)
	sawShared, sawFS, sawPrivate := false, false, false
	for i := 0; i < 50000; i++ {
		p := i % s.Procs
		r := g.Next(p)
		b := int(r.Block)
		switch {
		case b < s.Keys:
			if !r.Shared {
				t.Fatalf("key ref not marked shared: %+v", r)
			}
			sawShared = true
		case b < s.Keys+s.FalseShareBlocks:
			if !r.Shared {
				t.Fatalf("false-share ref not marked shared: %+v", r)
			}
			sawFS = true
		default:
			if r.Shared {
				t.Fatalf("private ref marked shared: %+v", r)
			}
			base := s.Keys + s.FalseShareBlocks + p*s.PrivateBlocks
			if b < base || b >= base+s.PrivateBlocks {
				t.Fatalf("proc %d private ref %d outside [%d,%d)", p, b, base, base+s.PrivateBlocks)
			}
			sawPrivate = true
		}
	}
	if !sawShared || !sawFS || !sawPrivate {
		t.Fatalf("regions unexercised: shared=%v fs=%v private=%v", sawShared, sawFS, sawPrivate)
	}
}

func TestGenTiersSkewWriteFraction(t *testing.T) {
	// A read-mostly-dominated spec must write far less often on shared
	// keys than a write-heavy one.
	writeFrac := func(readMostly float64) float64 {
		s := smallSpec()
		s.ReadMostlyFrac = readMostly
		g := New(s)
		writes, shared := 0, 0
		for i := 0; i < 100000; i++ {
			if r := g.Next(i % 4); r.Shared {
				shared++
				if r.Write {
					writes++
				}
			}
		}
		return float64(writes) / float64(shared)
	}
	readMostly, writeHeavy := writeFrac(0.95), writeFrac(0.05)
	if readMostly >= writeHeavy/2 {
		t.Fatalf("tiering has no effect: read-mostly write frac %v vs write-heavy %v", readMostly, writeHeavy)
	}
}

func TestDiurnalWaveModulatesSharing(t *testing.T) {
	s := smallSpec()
	s.DiurnalPeriod = 10000
	s.DiurnalAmp = 0.8
	// Sample the shared fraction in the trough half vs the peak half of
	// one period (triangle: low near phase 0 and P, high near P/2).
	window := func(lo, hi int64) float64 {
		shared, total := 0, 0
		for p := 0; p < s.Procs; p++ {
			gg := New(s)
			for i := int64(0); i < hi; i++ {
				r := gg.Next(p)
				if i >= lo {
					total++
					if int(r.Block) < s.Keys {
						shared++
					}
				}
			}
		}
		return float64(shared) / float64(total)
	}
	trough := window(0, 2000)
	peak := window(4000, 6000)
	if peak <= trough*1.5 {
		t.Fatalf("diurnal wave flat: trough %v peak %v", trough, peak)
	}
}

func TestFlashCrowdConcentrates(t *testing.T) {
	s := smallSpec()
	s.FlashEvery = 10000
	s.FlashLen = 10000 // always in-flash: every shared ref may redirect
	s.FlashKeys = 4
	s.FlashFrac = 0.9
	g := New(s)
	counts := make(map[addr.Block]int)
	shared := 0
	for i := 0; i < 40000; i++ {
		if r := g.Next(i % 4); r.Shared {
			shared++
			counts[r.Block]++
		}
	}
	// The top-4 keys should absorb the bulk of shared traffic.
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	sum4 := 0
	for k := 0; k < 4; k++ {
		best := -1
		for i, c := range top {
			if best < 0 || c > top[best] {
				best = i
			}
		}
		if best >= 0 {
			sum4 += top[best]
			top[best] = -1
		}
	}
	if frac := float64(sum4) / float64(shared); frac < 0.6 {
		t.Fatalf("flash hot set absorbs only %v of shared traffic", frac)
	}
}

func TestChurnRotatesWorkingSet(t *testing.T) {
	s := smallSpec()
	s.ChurnEvery = 5000
	s.ChurnStride = 64
	g := New(s)
	hot := func(upto int64) addr.Block {
		counts := make(map[addr.Block]int)
		for i := int64(0); i < upto; i++ {
			if r := g.Next(0); r.Shared {
				counts[r.Block]++
			}
		}
		var best addr.Block
		bestC := -1
		for b, c := range counts {
			if c > bestC || (c == bestC && b < best) {
				best, bestC = b, c
			}
		}
		return best
	}
	first := hot(5000)
	second := hot(5000) // continues the same stream: epoch 1
	if first == second {
		t.Fatalf("working set did not rotate: hot key %v in both epochs", first)
	}
}

func TestPresetsAllValid(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Presets() {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate preset name %s", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{"kv-serving", "diurnal", "flash-crowd", "churn", "false-sharing", "write-heavy"} {
		if !seen[want] {
			t.Errorf("missing preset %s", want)
		}
	}
	if _, err := Preset("no-such"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestResolveOverlaysPreset(t *testing.T) {
	s := Resolve(Spec{Name: "kv-serving", Procs: 16, Seed: 99})
	if s.Procs != 16 || s.Seed != 99 {
		t.Fatalf("overrides lost: %+v", s)
	}
	base, _ := Preset("kv-serving")
	if s.Keys != base.Keys || s.Skew != base.Skew || s.SharedFrac != base.SharedFrac {
		t.Fatalf("preset defaults not inherited: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unknown name: returned unchanged.
	raw := smallSpec()
	if got := Resolve(raw); got != raw {
		t.Fatalf("unknown-name spec mutated: %+v", got)
	}
}

func TestSynthesizeMatchesRecord(t *testing.T) {
	// The streamed file must hold exactly what Record captures from the
	// same spec — the equivalence the whole subsystem rests on.
	spec := smallSpec()
	const refs = 700
	for _, chunkCap := range []int{32, 256, 8192} {
		var buf bytes.Buffer
		if err := Synthesize(&buf, spec, refs, chunkCap, nil); err != nil {
			t.Fatalf("chunkCap=%d: %v", chunkCap, err)
		}
		got, err := memtrace.ReadChunked(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("chunkCap=%d: %v", chunkCap, err)
		}
		want := memtrace.Record(New(spec), spec.Procs, refs)
		gw, ww := got.Generator(), want.Generator()
		for i := 0; i < refs; i++ {
			for p := 0; p < spec.Procs; p++ {
				if a, b := gw.Next(p), ww.Next(p); a != b {
					t.Fatalf("chunkCap=%d: synthesized trace diverged from Record at ref %d proc %d", chunkCap, i, p)
				}
			}
		}
	}
}

func TestSynthesizeDeterministicBytes(t *testing.T) {
	spec, _ := Preset("flash-crowd")
	spec.Procs = 2
	var a, b bytes.Buffer
	if err := Synthesize(&a, spec, 300, 64, nil); err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(&b, spec, 300, 64, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same spec synthesized different bytes")
	}
}

func TestSynthesizeRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	bad := smallSpec()
	bad.Keys = 0
	if err := Synthesize(&buf, bad, 10, 0, nil); err == nil {
		t.Error("invalid spec accepted")
	}
	if err := Synthesize(&buf, smallSpec(), 0, 0, nil); err == nil {
		t.Error("zero refsPerProc accepted")
	}
}

func TestStreamStats(t *testing.T) {
	spec := smallSpec()
	st := NewStreamStats(spec.Procs, 32)
	var buf bytes.Buffer
	const refs = 5000
	if err := Synthesize(&buf, spec, refs, 256, st); err != nil {
		t.Fatal(err)
	}
	if st.Total() != int64(refs*spec.Procs) {
		t.Fatalf("Total = %d, want %d", st.Total(), refs*spec.Procs)
	}
	for p, c := range st.PerProc() {
		if c != refs {
			t.Fatalf("proc %d count %d, want %d", p, c, refs)
		}
	}
	// Observed shared fraction tracks the configured one.
	if got := st.SharedFrac(); math.Abs(got-spec.SharedFrac) > 0.05 {
		t.Fatalf("SharedFrac = %v, want ≈ %v", got, spec.SharedFrac)
	}
	if st.WriteFrac() <= 0 || st.WriteFrac() >= 1 {
		t.Fatalf("WriteFrac = %v", st.WriteFrac())
	}
	// Blocks must agree with the trace's own notion.
	tr, err := memtrace.ReadChunked(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks() != tr.Generator().Blocks() {
		t.Fatalf("stats Blocks %d vs trace %d", st.Blocks(), tr.Generator().Blocks())
	}
	top := st.TopKeys()
	if len(top) == 0 {
		t.Fatal("no hot keys tracked")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("TopKeys not sorted by count")
		}
	}
	// Rank 0 under Zipf(1.0) must dominate: sanity, not a tight bound.
	if top[0].Block != 0 {
		t.Logf("note: hottest tracked key is %v (rank 0 expected for skew 1)", top[0].Block)
	}
	if slope := st.ZipfSlope(); slope >= -0.3 {
		t.Fatalf("ZipfSlope = %v, want clearly negative for skew 1.0", slope)
	}
}

func TestStreamStatsTopKeysExactWhenSmall(t *testing.T) {
	st := NewStreamStats(1, 8)
	for i := 0; i < 30; i++ {
		st.Observe(0, addr.Ref{Block: 1, Shared: true})
	}
	for i := 0; i < 10; i++ {
		st.Observe(0, addr.Ref{Block: 2, Shared: true})
	}
	st.Observe(0, addr.Ref{Block: 9}) // private: not tracked
	top := st.TopKeys()
	if len(top) != 2 || top[0].Block != 1 || top[0].Count != 30 || top[1].Block != 2 || top[1].Count != 10 {
		t.Fatalf("TopKeys = %+v", top)
	}
	if top[0].Err != 0 || top[1].Err != 0 {
		t.Fatalf("exact counts must carry zero error: %+v", top)
	}
}
