package sweep

import (
	"fmt"

	"twobit/internal/obs"
)

// ObsGroup is the merged observability snapshot of one (protocol, net,
// scenario) section of a campaign: every successful run in the section
// folded together with obs.Merge, so windowed series add per aligned
// window index, top-K block sketches union-join, and the false-sharing
// tables accumulate. Scenario is "" for classic-generator campaigns.
type ObsGroup struct {
	Protocol string
	Net      string
	Scenario string
	Runs     int // successful runs merged into Snap
	Failed   int // runs in the section that carried an error
	Snap     obs.Snapshot
}

// ObsGroups folds a campaign's records into one merged snapshot per
// (protocol, net, scenario) section, in plan-axis order. Records are
// merged in run-id order, which — because obs.Merge is commutative and
// associative over canonical snapshots — is a presentation choice, not a
// correctness requirement. Records without an obs snapshot (campaign run
// without -obs-window/-obs-topk) are an error naming the first such run.
func ObsGroups(p *Plan, recs []Record) ([]ObsGroup, error) {
	points, err := p.Points()
	if err != nil {
		return nil, err
	}
	if len(recs) != len(points) {
		return nil, fmt.Errorf("sweep: grouping %d records against a plan of %d runs (campaign incomplete?)",
			len(recs), len(points))
	}

	type sectionKey struct {
		protocol, net, scenario string
	}
	idx := make(map[sectionKey]int)
	var groups []ObsGroup
	for _, ps := range p.Protocols {
		for _, ns := range p.Nets {
			for _, scen := range p.scenarioAxis() {
				k := sectionKey{ps, ns, scen.Scenario}
				idx[k] = len(groups)
				groups = append(groups, ObsGroup{Protocol: ps, Net: ns, Scenario: scen.Scenario})
			}
		}
	}

	for i, rec := range recs {
		pt := points[i]
		gi, ok := idx[sectionKey{pt.Protocol.String(), pt.Net.String(), pt.Scenario}]
		if !ok {
			return nil, fmt.Errorf("sweep: record %d does not belong to any plan section", i)
		}
		g := &groups[gi]
		if rec.Err != "" {
			g.Failed++
			continue
		}
		res, err := rec.Decode()
		if err != nil {
			return nil, err
		}
		if res.Obs == nil {
			return nil, fmt.Errorf("sweep: run %d carries no obs snapshot (was the campaign executed with observability on?)", rec.RunID)
		}
		if g.Runs == 0 {
			g.Snap = *res.Obs
		} else if g.Snap, err = obs.Merge(g.Snap, *res.Obs); err != nil {
			return nil, fmt.Errorf("sweep: merging run %d into %s/%s section: %w", rec.RunID, g.Protocol, g.Net, err)
		}
		g.Runs++
	}
	return groups, nil
}
