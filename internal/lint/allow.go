package lint

import (
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
}

// allowSet indexes directives by file and line.
type allowSet map[string]map[int]allowDirective

// suppresses reports whether an //lint:allow for the diagnostic's
// analyzer sits on the diagnostic's line or the line directly above it.
func (s allowSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if a, ok := lines[ln]; ok && a.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}

// collectAllows gathers every //lint:allow directive in the module. A
// directive without both an analyzer name and a reason is itself a
// diagnostic: the escape hatch must document why it is used.
func collectAllows(mod *module) (allowSet, []Diagnostic) {
	set := make(allowSet)
	var diags []Diagnostic
	for _, p := range mod.sorted() {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					pos := mod.fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: AnalyzerDirective,
							Message:  "malformed //lint:allow: need an analyzer name and a written reason",
						})
						continue
					}
					if set[pos.Filename] == nil {
						set[pos.Filename] = make(map[int]allowDirective)
					}
					set[pos.Filename][pos.Line] = allowDirective{
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					}
				}
			}
		}
	}
	return set, diags
}
