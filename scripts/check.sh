#!/bin/sh
# check.sh — the full verification gauntlet, in increasing cost order:
# compile, vet, coherencelint (static protocol analysis), the test suite
# under the race detector, then a sweep smoke stage that exercises the
# experiment-orchestration engine end to end: a tiny campaign must produce
# byte-identical stores at workers=1 and workers=4, and a store truncated
# to half must converge to those same bytes under -resume. Everything
# must pass for a change to land.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> coherencelint ./..."
go run ./cmd/coherencelint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> sweep smoke (determinism + resume)"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cat > "$SMOKE/plan.json" <<'EOF'
{
  "name": "smoke",
  "protocols": ["two-bit", "full-map"],
  "qs": [0.05, 0.10],
  "ws": [0.3],
  "procs": [4],
  "replicates": 2,
  "refs_per_proc": 300,
  "root_seed": 11
}
EOF
go run ./cmd/sweep -plan "$SMOKE/plan.json" -workers 1 -out "$SMOKE/w1.jsonl" -quiet > /dev/null
go run ./cmd/sweep -plan "$SMOKE/plan.json" -workers 4 -out "$SMOKE/w4.jsonl" -quiet > /dev/null
cmp "$SMOKE/w1.jsonl" "$SMOKE/w4.jsonl" || {
    echo "check.sh: workers=1 and workers=4 stores differ" >&2
    exit 1
}
# Simulate a killed campaign: keep the first half of the store, resume it.
LINES="$(wc -l < "$SMOKE/w1.jsonl")"
head -n "$((LINES / 2))" "$SMOKE/w1.jsonl" > "$SMOKE/half.jsonl"
go run ./cmd/sweep -plan "$SMOKE/plan.json" -workers 4 -out "$SMOKE/half.jsonl" -resume -quiet > /dev/null
cmp "$SMOKE/w1.jsonl" "$SMOKE/half.jsonl" || {
    echo "check.sh: resumed store does not converge to the serial store" >&2
    exit 1
}


echo "==> obs zero-alloc guard"
# The disabled instrumentation path must not allocate: one allocation per
# call would silently tax every uninstrumented simulation.
OBS_BENCH="$(go test -run '^$' -bench '^BenchmarkObs(Disabled|Enabled)$' -benchmem -benchtime 1000x .)"
echo "$OBS_BENCH"
echo "$OBS_BENCH" | awk '
/^BenchmarkObsDisabled/ {
    for (i = 2; i <= NF; i++) if ($i == "allocs/op") { allocs = $(i - 1); found = 1 }
}
END {
    if (!found) { print "check.sh: BenchmarkObsDisabled did not report allocs/op" > "/dev/stderr"; exit 1 }
    if (allocs + 0 != 0) { printf "check.sh: disabled obs path allocates (%s allocs/op)\n", allocs > "/dev/stderr"; exit 1 }
}'

echo "==> kernel zero-alloc guard + order oracle"
# The event kernel's schedule+drain path must not allocate: an allocation
# per event would tax every simulated cycle. The order oracle replays the
# retired container/heap implementation against the inlined 4-ary heap
# and fails on the first divergent pop.
KERNEL_BENCH="$(go test -run '^$' -bench '^BenchmarkKernel$' -benchmem -benchtime 1000x .)"
echo "$KERNEL_BENCH"
echo "$KERNEL_BENCH" | awk '
/^BenchmarkKernel/ {
    for (i = 2; i <= NF; i++) if ($i == "allocs/op") { allocs = $(i - 1); found = 1 }
}
END {
    if (!found) { print "check.sh: BenchmarkKernel did not report allocs/op" > "/dev/stderr"; exit 1 }
    if (allocs + 0 != 0) { printf "check.sh: kernel hot path allocates (%s allocs/op)\n", allocs > "/dev/stderr"; exit 1 }
}'
go test -run '^TestKernelOrderOracle' -count=1 ./internal/sim

echo "==> trace export determinism"
cat > "$SMOKE/traceplan.json" <<'EOF2'
{
  "name": "tracesmoke",
  "protocols": ["two-bit"],
  "qs": [0.1],
  "ws": [0.3],
  "procs": [4],
  "refs_per_proc": 200,
  "root_seed": 7
}
EOF2
go run ./cmd/coherencetrace -plan "$SMOKE/traceplan.json" -run 0 -o "$SMOKE/trace1.json"
go run ./cmd/coherencetrace -plan "$SMOKE/traceplan.json" -run 0 -o "$SMOKE/trace2.json"
cmp "$SMOKE/trace1.json" "$SMOKE/trace2.json" || {
    echo "check.sh: trace export is not deterministic" >&2
    exit 1
}

echo "==> fuzz: results codec (30s)"
go test -run '^$' -fuzz '^FuzzDecodeResults$' -fuzztime 30s ./internal/system

echo "==> fuzz: store prefix parser (30s)"
go test -run '^$' -fuzz '^FuzzStorePrefix$' -fuzztime 30s ./internal/sweep

echo "OK"
