package system

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"twobit/internal/memtrace"
	"twobit/internal/tracegen"
	"twobit/internal/workload"
)

func traceSpec(procs int) tracegen.Spec {
	return tracegen.Spec{
		Name: "test", Procs: procs, Keys: 128, Skew: 1.0,
		SharedFrac: 0.3, ReadMostlyFrac: 0.8, ReadMostlyWrite: 0.05,
		WriteHeavyWrite: 0.6, PrivateBlocks: 32, PrivateWrite: 0.3, Seed: 21,
	}
}

// TestRunFromTraceStreamMatchesMemory is the subsystem's acceptance
// contract: the same scenario yields byte-identical Results whether the
// machine replays the in-memory Trace, the chunked stream at any chunk
// size, or the live generator.
func TestRunFromTraceStreamMatchesMemory(t *testing.T) {
	const procs, refs = 4, 400
	spec := traceSpec(procs)
	cfg := DefaultConfig(TwoBit, procs)
	cfg.Seed = 99

	live, err := RunFromTrace(cfg, liveSource{spec}, refs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := live.EncodeStable()
	if err != nil {
		t.Fatal(err)
	}

	tr := memtrace.Record(tracegen.New(spec), procs, refs)
	mem, err := RunFromTrace(cfg, tr, refs)
	if err != nil {
		t.Fatal(err)
	}
	memBytes, err := mem.EncodeStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, memBytes) {
		t.Fatal("in-memory trace replay diverged from live generator")
	}

	for _, chunkCap := range []int{16, 256, 4096} {
		var buf bytes.Buffer
		if err := tracegen.Synthesize(&buf, spec, refs, chunkCap, nil); err != nil {
			t.Fatal(err)
		}
		sr, err := memtrace.OpenStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunFromTrace(cfg, sr, refs)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := got.EncodeStable()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, gotBytes) {
			t.Fatalf("chunkCap=%d: streamed replay diverged from in-memory replay", chunkCap)
		}
	}
}

// fixedSource hands out one pre-built generator, so the test can keep a
// handle on the StreamGen's residency accounting across the run.
type fixedSource struct {
	procs int
	gen   workload.Generator
}

func (s fixedSource) Procs() int                    { return s.procs }
func (s fixedSource) Generator() workload.Generator { return s.gen }

// TestRunFromTraceStreamingResidency proves the acceptance claim end to
// end: a full simulation driven from a chunked file on disk holds only
// O(procs · chunk) decoded trace state — the trace never materializes.
func TestRunFromTraceStreamingResidency(t *testing.T) {
	const procs, refs, chunkCap = 4, 20000, 256
	spec := traceSpec(procs)
	path := filepath.Join(t.TempDir(), "big.mtrc2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracegen.Synthesize(f, spec, refs, chunkCap, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	src, err := memtrace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer memtrace.CloseSource(src)
	sr, ok := src.(*memtrace.StreamReader)
	if !ok {
		t.Fatalf("OpenFile returned %T, want *memtrace.StreamReader", src)
	}
	g := sr.Stream()

	cfg := DefaultConfig(TwoBit, procs)
	cfg.Seed = 5
	if _, err := RunFromTrace(cfg, fixedSource{procs: procs, gen: g}, refs); err != nil {
		t.Fatal(err)
	}
	max := g.MaxResidentBytes()
	if max == 0 {
		t.Fatal("residency accounting reported 0 bytes")
	}
	bound := int64(procs) * int64(chunkCap) * 24
	if max > bound {
		t.Fatalf("resident high-water %dB exceeds O(procs·chunk) bound %dB", max, bound)
	}
	if max > fi.Size()/2 {
		t.Fatalf("resident high-water %dB not small vs %dB file — replay is materializing the trace", max, fi.Size())
	}
}

func TestRunFromTraceRejectsShortTrace(t *testing.T) {
	tr := memtrace.Record(tracegen.New(traceSpec(2)), 2, 10)
	cfg := DefaultConfig(TwoBit, 4)
	if _, err := RunFromTrace(cfg, tr, 10); err == nil {
		t.Fatal("trace with fewer streams than processors accepted")
	}
}

// liveSource adapts a scenario spec to TraceSource for the test above.
type liveSource struct{ spec tracegen.Spec }

func (s liveSource) Procs() int { return s.spec.Procs }

func (s liveSource) Generator() workload.Generator { return tracegen.New(s.spec) }
