// Package exhaustbad holds the switches the exhaustive-switch analyzer
// must reject; the test pins the exact positions and messages.
package exhaustbad

// Color is a three-valued enum.
type Color uint8

// The colors.
const (
	Red Color = iota
	Green
	Blue
)

var sink int

// name drops Blue with no default: a silently unhandled state.
func name(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

// act hides Green and Blue behind a default that quietly does work.
func act(c Color) {
	switch c {
	case Red:
		sink = 1
	default:
		sink = 2
	}
}
