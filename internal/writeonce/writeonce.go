// Package writeonce implements Goodman's "write-once" bus scheme (§2.5) —
// the paper's representative of the bus-based solutions that distribute the
// global map over the local caches. Each frame is Invalid, Valid,
// Reserved (written once; memory still current) or Dirty (only valid
// copy); every cache snoops every bus transaction and takes action if it
// holds the block.
//
// Bus transactions are modeled atomically: a transaction reserves a bus
// slot (serializing against all other traffic) and its effects — snoops,
// invalidations, data supply from a dirty owner, the memory update — are
// applied in one simulation event at the slot's time. This matches the
// synchronous backplane the scheme assumes and makes every transaction a
// linearization point. Frame mapping: Reserved ⇔ Exclusive && !Modified,
// Dirty ⇔ Modified.
package writeonce

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/cache"
	"twobit/internal/memory"
	"twobit/internal/msg"
	"twobit/internal/network"
	"twobit/internal/proto"
	"twobit/internal/sim"
)

// Config configures the bus system.
type Config struct {
	Topo   proto.Topology
	Space  addr.Space
	Lat    proto.Latencies
	Commit proto.CommitFunc
}

// System is the shared bus plus the memory modules: the "memory side" of
// the protocol. All agents transact through it.
type System struct {
	cfg    Config
	kernel *sim.Kernel
	bus    *network.Bus
	mem    []*memory.Module
	agents []*Agent
	stats  proto.CtrlStats
}

// NewSystem builds the bus system. bus must be the machine's network.
func NewSystem(cfg Config, kernel *sim.Kernel, bus *network.Bus) *System {
	s := &System{cfg: cfg, kernel: kernel, bus: bus}
	for j := 0; j < cfg.Space.Modules; j++ {
		s.mem = append(s.mem, memory.NewModule(cfg.Space, j, cfg.Lat.Memory))
	}
	return s
}

// Reset restores the bus system and its registered agents to their
// freshly-constructed state under cfg (Topo and Space must match
// construction), reusing the memory modules. Agents' cache stores are
// reset separately by their owner.
func (s *System) Reset(cfg Config) {
	if cfg.Topo != s.cfg.Topo || cfg.Space != s.cfg.Space {
		panic("writeonce: Reset shape differs from construction")
	}
	s.cfg = cfg
	s.stats = proto.CtrlStats{}
	for _, m := range s.mem {
		m.Reset(cfg.Lat.Memory)
	}
	for _, a := range s.agents {
		a.stats = proto.CacheSideStats{}
		a.busy = false
	}
}

// CtrlStats implements proto.MemSide.
func (s *System) CtrlStats() *proto.CtrlStats { return &s.stats }

// MemVersion returns memory's version of b, for invariants.
func (s *System) MemVersion(b addr.Block) uint64 {
	return s.mem[b.Module(s.cfg.Space.Modules)].Read(b)
}

// Deliver implements network.Handler; the atomic-bus model never sends the
// system a message.
func (s *System) Deliver(src network.NodeID, m msg.Message) {
	panic(fmt.Sprintf("writeonce: unexpected message %v", m))
}

func (s *System) memWrite(b addr.Block, v uint64) {
	s.mem[b.Module(s.cfg.Space.Modules)].Write(b, v)
}

func (s *System) memRead(b addr.Block) uint64 {
	return s.mem[b.Module(s.cfg.Space.Modules)].Read(b)
}

// transact reserves a bus slot and runs fn atomically at its time,
// counting the transaction and its snoops (every other cache watches the
// bus) into the bus statistics.
func (s *System) transact(from int, kind msg.Kind, b addr.Block, fn func()) {
	at := s.bus.Reserve()
	ns := s.bus.Stats()
	ns.Messages.Inc()
	ns.Broadcasts.Inc()
	for range s.agents {
		// Every attached cache (except the initiator) snoops the slot.
	}
	ns.BroadcastCopies.Add(uint64(len(s.agents) - 1))
	s.kernel.At(at, fn)
}

// snoopOthers consults every other cache's directory for block b, applying
// the paper's stolen-cycle accounting, and returns the frames found.
func (s *System) snoopOthers(from int, b addr.Block) []*snoopHit {
	var hits []*snoopHit
	for i, a := range s.agents {
		if i == from {
			continue
		}
		a.stats.CommandsReceived.Inc()
		if f := a.store.Snoop(b); f != nil {
			hits = append(hits, &snoopHit{agent: a, frame: f})
		} else {
			a.stats.UselessCommands.Inc()
		}
	}
	return hits
}

type snoopHit struct {
	agent *Agent
	frame *cache.Frame
}

// Agent is one processor-cache pair on the bus.
type Agent struct {
	sys   *System
	index int
	store *cache.Cache
	stats proto.CacheSideStats
	busy  bool
}

// NewAgent creates agent index with the given cache and registers it on
// the bus system.
func NewAgent(sys *System, index int, store *cache.Cache) *Agent {
	a := &Agent{sys: sys, index: index, store: store}
	sys.agents = append(sys.agents, a)
	return a
}

// Store implements proto.CacheSide.
func (a *Agent) Store() *cache.Cache { return a.store }

// SideStats implements proto.CacheSide.
func (a *Agent) SideStats() *proto.CacheSideStats { return &a.stats }

// Deliver implements network.Handler; unused in the atomic-bus model.
func (a *Agent) Deliver(src network.NodeID, m msg.Message) {
	panic(fmt.Sprintf("writeonce: cache %d: unexpected %v", a.index, m))
}

func (a *Agent) commit(b addr.Block, v uint64) {
	if a.sys.cfg.Commit != nil {
		a.sys.cfg.Commit(b, v)
	}
}

// Access implements proto.CacheSide.
func (a *Agent) Access(ref addr.Ref, writeVersion uint64, done func(uint64)) {
	if a.busy {
		panic(fmt.Sprintf("writeonce: cache %d: overlapping references", a.index))
	}
	a.stats.References.Inc()
	lat := a.sys.cfg.Lat.CacheHit
	if !ref.Write {
		a.stats.Reads.Inc()
		if f := a.store.Access(ref.Block); f != nil {
			v := f.Data
			a.sys.kernel.After(lat, func() { done(v) })
			return
		}
		a.readMiss(ref.Block, done)
		return
	}
	a.stats.Writes.Inc()
	if f := a.store.Access(ref.Block); f != nil {
		switch {
		case f.Modified: // Dirty: write locally
			f.Data = writeVersion
			a.commit(ref.Block, writeVersion)
			a.sys.kernel.After(lat, func() { done(writeVersion) })
		case f.Exclusive: // Reserved: silent upgrade to Dirty
			f.Modified = true
			f.Exclusive = false
			f.Data = writeVersion
			a.stats.ExclusiveWrites.Inc()
			a.commit(ref.Block, writeVersion)
			a.sys.kernel.After(lat, func() { done(writeVersion) })
		default: // Valid: the write-once transaction
			a.writeOnce(ref.Block, writeVersion, done)
		}
		return
	}
	a.writeMiss(ref.Block, writeVersion, done)
}

// evictFor frees a frame for block b, flushing a dirty victim over the
// bus. The dirty copy stays valid (and snoopable) until the flush wins the
// bus: invalidating it at issue time would let a read slot reserved
// earlier find neither the dirty copy nor up-to-date memory. By the flush
// slot the copy may have been cleaned (a read snooped it) or taken (a
// write snooped it); the closure handles all three outcomes.
func (a *Agent) evictFor(b addr.Block) {
	victim := a.store.Victim(b)
	if !victim.Valid {
		return
	}
	old := victim.Block
	if victim.Modified {
		a.stats.EvictionsDirty.Inc()
		a.sys.transact(a.index, msg.KindBusFlush, old, func() {
			f := a.store.Lookup(old)
			if f == nil {
				return // a write transaction already took the block
			}
			if f.Modified {
				a.sys.memWrite(old, f.Data)
			}
			a.store.Evict(f)
		})
		return
	}
	a.stats.EvictionsClean.Inc()
	a.store.Evict(victim)
}

// readMiss runs the BusRead transaction.
func (a *Agent) readMiss(b addr.Block, done func(uint64)) {
	a.busy = true
	a.evictFor(b)
	a.sys.transact(a.index, msg.KindBusRead, b, func() {
		s := a.sys
		s.stats.ReadMisses.Inc()
		data := s.memRead(b)
		for _, h := range s.snoopOthers(a.index, b) {
			if h.frame.Modified {
				// The dirty owner supplies the block; memory is updated.
				data = h.frame.Data
				s.memWrite(b, data)
				h.frame.Modified = false
				h.agent.stats.QueriesAnswered.Inc()
			}
			h.frame.Exclusive = false // Reserved → Valid on observed read
		}
		victim := a.store.Victim(b)
		a.store.Fill(victim, b, data)
		a.busy = false
		s.kernel.After(s.cfg.Lat.CacheHit, func() { done(data) })
	})
}

// writeMiss runs the BusWrite (read-with-intent-to-modify) transaction.
func (a *Agent) writeMiss(b addr.Block, version uint64, done func(uint64)) {
	a.busy = true
	a.evictFor(b)
	a.sys.transact(a.index, msg.KindBusWrite, b, func() {
		s := a.sys
		s.stats.WriteMisses.Inc()
		for _, h := range s.snoopOthers(a.index, b) {
			if h.frame.Modified {
				// Write the dirty data back before taking ownership.
				s.memWrite(b, h.frame.Data)
				h.agent.stats.QueriesAnswered.Inc()
			}
			h.agent.store.Invalidate(b)
			h.agent.stats.InvalidationsApplied.Inc()
		}
		victim := a.store.Victim(b)
		a.store.Fill(victim, b, version)
		f := a.store.Lookup(b)
		f.Modified = true // Dirty
		a.commit(b, version)
		a.busy = false
		s.kernel.After(s.cfg.Lat.CacheHit, func() { done(version) })
	})
}

// writeOnce runs the first-write transaction on a Valid block: the word is
// written through to memory and every other copy is invalidated; the frame
// becomes Reserved.
func (a *Agent) writeOnce(b addr.Block, version uint64, done func(uint64)) {
	a.busy = true
	a.sys.transact(a.index, msg.KindBusWriteOnce, b, func() {
		s := a.sys
		s.stats.MRequests.Inc() // the write-hit-on-unmodified equivalent
		f := a.store.Lookup(b)
		if f == nil {
			// Our copy was invalidated by a transaction that won the bus
			// first (the §3.2.5 race, bus flavor). The slot is aborted
			// before touching anyone else's state — a new owner may hold
			// the block Dirty, and invalidating it here would destroy the
			// only valid copy. Retry as a write miss.
			a.stats.Retries.Inc()
			a.busy = false
			a.writeMiss(b, version, done)
			return
		}
		// We hold a Valid copy, so every other copy is Valid too (Dirty
		// and Reserved imply a sole copy); invalidating without write-back
		// is safe.
		for _, h := range s.snoopOthers(a.index, b) {
			h.agent.store.Invalidate(b)
			h.agent.stats.InvalidationsApplied.Inc()
		}
		f.Exclusive = true // Reserved
		f.Data = version
		s.memWrite(b, version) // write-through of the first write
		a.commit(b, version)
		a.busy = false
		s.kernel.After(s.cfg.Lat.CacheHit, func() { done(version) })
	})
}
