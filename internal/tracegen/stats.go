package tracegen

import (
	"math"

	"twobit/internal/addr"
	"twobit/internal/stats"
)

// StreamStats accumulates online statistics over a reference stream in
// O(K) memory, so a synthesis or inspection pass over a 100M-reference
// trace can report its shape without holding it. Hot keys are tracked
// with the shared Space-Saving sketch (stats.TopK). All updates are
// deterministic in stream order.
type StreamStats struct {
	perProc  []int64
	writes   int64
	shared   int64
	maxBlock uint64
	any      bool

	top *stats.TopK
}

// DefaultTopK is the hot-key sketch size used by the CLIs.
const DefaultTopK = 64

// NewStreamStats sizes the accumulator for procs streams and a top-k
// hot-key sketch (k ≤ 0 selects DefaultTopK).
func NewStreamStats(procs, k int) *StreamStats {
	if k <= 0 {
		k = DefaultTopK
	}
	return &StreamStats{
		perProc: make([]int64, procs),
		top:     stats.NewTopK(k),
	}
}

// EnsureProcs grows the per-processor counters to at least n streams,
// for callers that discover the processor count as they scan.
func (s *StreamStats) EnsureProcs(n int) {
	for len(s.perProc) < n {
		s.perProc = append(s.perProc, 0)
	}
}

// Observe folds one reference into the statistics.
func (s *StreamStats) Observe(proc int, r addr.Ref) {
	s.perProc[proc]++
	if r.Write {
		s.writes++
	}
	if uint64(r.Block) > s.maxBlock || !s.any {
		s.maxBlock = uint64(r.Block)
		s.any = true
	}
	if !r.Shared {
		return
	}
	s.shared++
	s.top.Observe(uint64(r.Block))
}

// Total returns the number of observed references.
func (s *StreamStats) Total() int64 {
	n := int64(0)
	for _, c := range s.perProc {
		n += c
	}
	return n
}

// PerProc returns reference counts per processor.
func (s *StreamStats) PerProc() []int64 {
	out := make([]int64, len(s.perProc))
	copy(out, s.perProc)
	return out
}

// WriteFrac returns the observed write fraction.
func (s *StreamStats) WriteFrac() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.writes) / float64(t)
	}
	return 0
}

// SharedFrac returns the observed shared-reference fraction.
func (s *StreamStats) SharedFrac() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.shared) / float64(t)
	}
	return 0
}

// Blocks returns the observed address-space size (max block + 1).
func (s *StreamStats) Blocks() int {
	if !s.any {
		return 1
	}
	return int(s.maxBlock) + 1
}

// KeyCount is one hot key with its estimated reference count.
type KeyCount struct {
	Block addr.Block `json:"block"`
	Count int64      `json:"count"`
	Err   int64      `json:"err"` // the estimate overshoots by at most Err
}

// TopKeys returns the hot-key estimates, most-referenced first (block
// id breaks ties, so the order is deterministic).
func (s *StreamStats) TopKeys() []KeyCount {
	items := s.top.Items()
	out := make([]KeyCount, 0, len(items))
	for _, it := range items {
		out = append(out, KeyCount{Block: addr.Block(it.Key), Count: it.Count, Err: it.Err})
	}
	return out
}

// ZipfSlope fits a log-log regression of estimated count against rank
// over the hot-key sketch and returns the slope: a stream drawn from
// Zipf(s) fits ≈ −s. With fewer than 3 tracked keys it returns 0.
func (s *StreamStats) ZipfSlope() float64 {
	top := s.TopKeys()
	var n, sx, sy, sxx, sxy float64
	for r, kc := range top {
		if kc.Count <= 0 {
			continue
		}
		x := math.Log(float64(r + 1))
		y := math.Log(float64(kc.Count))
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	if n < 3 {
		return 0
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
