// Package eng is kernel-reachable code the determinism analyzer must
// accept: order-insensitive map reads, slice-driven scheduling, and one
// documented escape hatch.
package eng

import "determgood/sim"

// Engine drives the kernel deterministically.
type Engine struct {
	k     *sim.Kernel
	queue map[int]int
}

// Depth sums the queue; pure map reads are order-insensitive.
func (e *Engine) Depth() int {
	n := 0
	for _, d := range e.queue {
		n += d
	}
	return n
}

// Run schedules from a caller-ordered slice, not a map.
func (e *Engine) Run(ds []int) {
	for _, d := range ds {
		e.k.After(int64(d), func() {})
	}
}

// Audit runs concurrently only while the kernel is paused; the escape
// hatch records why that is safe.
func (e *Engine) Audit(done chan struct{}) {
	//lint:allow determinism audit goroutine runs only while the kernel is paused
	go func() { close(done) }()
}
