package sweep

import (
	"bytes"
	"testing"
)

// FuzzStorePrefix fuzzes the checkpoint-recovery parser with arbitrary
// store bytes: it must never panic, the prefix it accepts must lie
// within the input, and — the resume invariant — that accepted prefix
// must itself re-read cleanly as exactly the records validPrefix
// counted. A disagreement between the two parsers is how a resumed
// campaign would diverge from a fresh one.
func FuzzStorePrefix(f *testing.F) {
	f.Add([]byte(`{"run_id":0,"protocol":"two-bit","net":"crossbar","q":0.1,"w":0.3,"procs":4,"replicate":0,"seed":7}` + "\n"))
	f.Add([]byte(`{"run_id":0}` + "\n" + `{"run_id":1}` + "\n" + `{"run_id":2,"torn`))
	f.Add([]byte(`{"run_id":1}` + "\n")) // out of sequence: corruption
	f.Add([]byte("not json\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 1<<20 {
			// ReadRecords' line cap is 1<<24; keep fuzz inputs far below
			// it so the two parsers cannot disagree on line length alone.
			return
		}
		n, count, err := validPrefix(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // detected corruption: a legitimate, non-panicking outcome
		}
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("prefix length %d outside input of %d bytes", n, len(data))
		}
		recs, err := ReadRecords(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("accepted prefix of %d bytes does not re-read: %v", n, err)
		}
		if len(recs) != count {
			t.Fatalf("validPrefix counted %d records, ReadRecords found %d", count, len(recs))
		}
		for i, rec := range recs {
			if rec.RunID != i {
				t.Fatalf("record %d has run id %d", i, rec.RunID)
			}
		}
	})
}
