package system

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/cache"
	"twobit/internal/core"
	"twobit/internal/directory"
	"twobit/internal/fullmap"
)

// copyView is one cache's valid copy of a block, for invariant checks.
type copyView struct {
	cacheIdx int
	frame    cache.Frame
}

// gatherCopies snapshots every valid copy of block b across the caches
// into the machine's scratch buffer — the checkers call it once per
// block per run, and each caller is done with the previous snapshot
// before asking for the next. Empty results are nil.
func (m *Machine) gatherCopies(b addr.Block) []copyView {
	out := m.copyScratch[:0]
	for k, cs := range m.caches {
		if f := cs.Store().Lookup(b); f != nil {
			out = append(out, copyView{cacheIdx: k, frame: *f})
		}
	}
	m.copyScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// checkDataInvariants verifies the protocol-independent coherence facts at
// quiescence: at most one modified copy; a modified copy is the only copy
// and holds the latest committed version; with no modified copy, memory
// holds the latest committed version and every clean copy matches memory.
func (m *Machine) checkDataInvariants(b addr.Block, copies []copyView, memVersion uint64) error {
	modified := 0
	var firstMod copyView
	for _, cv := range copies {
		if cv.frame.Modified {
			if modified == 0 {
				firstMod = cv
			}
			modified++
		}
	}
	if modified > 1 {
		return fmt.Errorf("%v: %d modified copies", b, modified)
	}
	if modified == 1 {
		if len(copies) != 1 {
			return fmt.Errorf("%v: modified copy in cache %d coexists with %d other copies",
				b, firstMod.cacheIdx, len(copies)-1)
		}
		if m.oracle != nil && firstMod.frame.Data != m.oracle.Latest(b) {
			return fmt.Errorf("%v: modified copy holds version %d, latest committed is %d",
				b, firstMod.frame.Data, m.oracle.Latest(b))
		}
		return nil
	}
	if m.oracle != nil && memVersion != m.oracle.Latest(b) {
		return fmt.Errorf("%v: memory holds version %d, latest committed is %d",
			b, memVersion, m.oracle.Latest(b))
	}
	for _, cv := range copies {
		if cv.frame.Data != memVersion {
			return fmt.Errorf("%v: clean copy in cache %d holds version %d, memory holds %d",
				b, cv.cacheIdx, cv.frame.Data, memVersion)
		}
	}
	return nil
}

// checkTwoBitInvariants verifies the two-bit global states against the
// caches' actual contents. Present* may legitimately overcount (it means
// "0 or more copies"); every other state is exact.
func checkTwoBitInvariants(m *Machine, ctrls []*core.Controller) error {
	for j, c := range ctrls {
		if !c.Quiescent() {
			return fmt.Errorf("controller %d not quiescent", j)
		}
	}
	for blk := 0; blk < m.space.Blocks; blk++ {
		b := addr.Block(blk)
		ctrl := ctrls[b.Module(m.space.Modules)]
		copies := m.gatherCopies(b)
		if err := m.checkDataInvariants(b, copies, ctrl.MemVersion(b)); err != nil {
			return err
		}
		st := ctrl.State(b)
		modified := 0
		for _, cv := range copies {
			if cv.frame.Modified {
				modified++
			}
		}
		switch st {
		case directory.Absent:
			if len(copies) != 0 {
				return fmt.Errorf("%v: state Absent but %d copies exist", b, len(copies))
			}
		case directory.Present1:
			if len(copies) > 1 || modified != 0 {
				return fmt.Errorf("%v: state Present1 but %d copies (%d modified)", b, len(copies), modified)
			}
		case directory.PresentStar:
			if modified != 0 {
				return fmt.Errorf("%v: state Present* but a modified copy exists", b)
			}
		case directory.PresentM:
			if len(copies) != 1 || modified != 1 {
				return fmt.Errorf("%v: state PresentM but %d copies (%d modified)", b, len(copies), modified)
			}
		}
		if modified == 1 && st != directory.PresentM {
			return fmt.Errorf("%v: modified copy exists but state is %v", b, st)
		}
		if len(copies) >= 2 && st != directory.PresentStar {
			return fmt.Errorf("%v: %d copies but state is %v", b, len(copies), st)
		}
	}
	return nil
}

// checkFullMapInvariants verifies the exact n+1-bit map against the caches.
func checkFullMapInvariants(m *Machine, ctrls []*fullmap.Controller) error {
	for j, c := range ctrls {
		if !c.Quiescent() {
			return fmt.Errorf("controller %d not quiescent", j)
		}
	}
	for blk := 0; blk < m.space.Blocks; blk++ {
		b := addr.Block(blk)
		ctrl := ctrls[b.Module(m.space.Modules)]
		copies := m.gatherCopies(b)
		if err := m.checkDataInvariants(b, copies, ctrl.MemVersion(b)); err != nil {
			return err
		}
		holders := ctrl.Holders(b)
		holds := func(k int) bool {
			for _, h := range holders {
				if h == k {
					return true
				}
			}
			return false
		}
		// Every copy must be a known holder (exactness of the map). Extra
		// presence bits can only exist when clean ejects are disabled.
		for _, cv := range copies {
			if !holds(cv.cacheIdx) {
				return fmt.Errorf("%v: cache %d holds a copy the map does not record", b, cv.cacheIdx)
			}
		}
		if !m.cfg.DisableCleanEject && len(holders) != len(copies) {
			return fmt.Errorf("%v: map records %d holders but %d copies exist", b, len(holders), len(copies))
		}
		if ctrl.Modified(b) {
			if len(holders) != 1 {
				return fmt.Errorf("%v: m bit set with %d holders", b, len(holders))
			}
			// With the Yen–Fu extension the m bit is pessimistic: the sole
			// holder may hold the block Exclusive (clean). Otherwise the
			// copy must be modified.
			if len(copies) == 1 {
				f := copies[0].frame
				if !f.Modified && !f.Exclusive {
					return fmt.Errorf("%v: m bit set but the copy is plainly clean", b)
				}
			}
		}
	}
	return nil
}

// checkGenericInvariants runs only the protocol-independent checks, using
// memVersion to read back main memory. Used by protocols without a global
// directory (classical, write-once, software).
func checkGenericInvariants(m *Machine, memVersion func(addr.Block) uint64, extra func(b addr.Block, copies []copyView) error) error {
	for blk := 0; blk < m.space.Blocks; blk++ {
		b := addr.Block(blk)
		copies := m.gatherCopies(b)
		if err := m.checkDataInvariants(b, copies, memVersion(b)); err != nil {
			return err
		}
		if extra != nil {
			if err := extra(b, copies); err != nil {
				return err
			}
		}
	}
	return nil
}
