package sweep

import (
	"encoding/json"
	"fmt"
	"sync"

	"twobit/internal/obs"
	"twobit/internal/system"
)

// Record is one completed run: the point's coordinates plus either the
// stable-encoded results or the simulation's error. The JSON field order
// is fixed by this struct, and Results carries the system wire schema
// verbatim, so a record marshals to the same bytes on every execution.
type Record struct {
	RunID     int             `json:"run_id"`
	Protocol  string          `json:"protocol"`
	Net       string          `json:"net"`
	Q         float64         `json:"q"`
	W         float64         `json:"w"`
	Procs     int             `json:"procs"`
	Replicate int             `json:"replicate"`
	Scenario  string          `json:"scenario,omitempty"`
	Seed      uint64          `json:"seed"`
	Err       string          `json:"err,omitempty"`
	Results   json.RawMessage `json:"results,omitempty"`
}

// Decode returns the run's results (an error for records of failed runs).
func (r Record) Decode() (system.Results, error) {
	if r.Err != "" {
		return system.Results{}, fmt.Errorf("sweep: run %d failed: %s", r.RunID, r.Err)
	}
	return system.DecodeResults(r.Results)
}

// runPoint executes one hermetic simulation. A run that fails (deadlock,
// coherence violation, invariant violation) produces a record with Err
// set rather than aborting the campaign: the failure is itself a
// deterministic, reportable result.
func runPoint(p *Plan, pt Point) Record {
	rec := Record{
		RunID:     pt.RunID,
		Protocol:  pt.Protocol.String(),
		Net:       pt.Net.String(),
		Q:         pt.Q,
		W:         pt.W,
		Procs:     pt.Procs,
		Replicate: pt.Replicate,
		Scenario:  pt.Scenario,
		Seed:      pt.Seed,
	}
	gen := p.generator(pt)
	cfg := p.Config(pt)
	if p.Obs || p.Spans {
		cfg.Obs = obs.New(0) // metrics only: no event ring in stored campaigns
		if p.Spans {
			cfg.Obs.EnableSpans(0) // matrix only: no per-span retention
		}
	}
	m, err := system.New(cfg, gen)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	res, err := m.Run(p.RefsPerProc)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	enc, err := res.EncodeStable()
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Results = enc
	return rec
}

// CheckPrefix verifies that a store's checkpointed records are a prefix
// of this plan's expansion — the guard against resuming a store that a
// different plan (other axes, other root seed) produced, which would
// silently mix foreign results into the aggregate.
func CheckPrefix(p *Plan, recs []Record) error {
	points, err := p.Points()
	if err != nil {
		return err
	}
	if len(recs) > len(points) {
		return fmt.Errorf("sweep: store holds %d runs but the plan expands to %d", len(recs), len(points))
	}
	for i, rec := range recs {
		pt := points[i]
		if rec.Seed != pt.Seed || rec.Protocol != pt.Protocol.String() || rec.Net != pt.Net.String() ||
			rec.Q != pt.Q || rec.W != pt.W || rec.Procs != pt.Procs || rec.Replicate != pt.Replicate ||
			rec.Scenario != pt.Scenario {
			return fmt.Errorf("sweep: store record %d (%s/%s scen=%q q=%g w=%g n=%d rep=%d seed=%d) was produced by a different plan: run %d expands to %s/%s scen=%q q=%g w=%g n=%d rep=%d seed=%d",
				i, rec.Protocol, rec.Net, rec.Scenario, rec.Q, rec.W, rec.Procs, rec.Replicate, rec.Seed,
				i, pt.Protocol, pt.Net, pt.Scenario, pt.Q, pt.W, pt.Procs, pt.Replicate, pt.Seed)
		}
	}
	return nil
}

// Execute runs the plan's points with ids ≥ startAt on a pool of workers
// and hands each finished record to emit in strictly increasing run-id
// order — the property that makes parallel output byte-identical to
// workers=1 output. emit is called from the Execute goroutine only. A
// non-nil error from emit aborts the campaign after the in-flight runs
// drain.
func Execute(p *Plan, workers, startAt int, emit func(Record) error) error {
	return ExecuteObserved(p, workers, startAt, emit, nil)
}

// ExecuteObserved is Execute with a telemetry publisher: prog (which may
// be nil for none) sees every run start, completion and ordered
// emission. Telemetry is strictly wall-clock bookkeeping about the
// worker pool — it never feeds back into a run, so an observed campaign
// produces byte-identical records.
func ExecuteObserved(p *Plan, workers, startAt int, emit func(Record) error, prog *Progress) error {
	if err := p.Validate(); err != nil {
		return err
	}
	points, err := p.Points()
	if err != nil {
		return err
	}
	if startAt < 0 || startAt > len(points) {
		return fmt.Errorf("sweep: resume offset %d outside plan of %d runs", startAt, len(points))
	}
	points = points[startAt:]
	if workers < 1 {
		workers = 1
	}
	if workers > len(points) {
		workers = len(points)
	}
	if len(points) == 0 {
		return nil
	}

	jobs := make(chan Point)
	results := make(chan Record, workers)
	stop := make(chan struct{}) // closed on emit error: stop feeding new runs
	prog.begin(workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pt := range jobs {
				prog.noteRunStart(w)
				rec := runPoint(p, pt)
				prog.noteRunDone(w, rec.Err != "")
				results <- rec
			}
		}(i)
	}
	go func() {
		defer close(jobs)
		for _, pt := range points {
			select {
			case jobs <- pt:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Re-sequencer: workers finish out of order; hold records until the
	// next expected id arrives, then emit the contiguous run.
	pending := make(map[int]Record, workers)
	next := startAt
	var emitErr error
	for rec := range results {
		pending[rec.RunID] = rec
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if emitErr == nil {
				if emitErr = emit(r); emitErr != nil {
					close(stop)
				} else {
					prog.noteEmitted()
				}
			}
			next++
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if len(pending) != 0 {
		return fmt.Errorf("sweep: %d records never sequenced (first gap at run %d)", len(pending), next)
	}
	return nil
}

// Collect executes the whole plan in memory and returns the ordered
// records — the convenience entry point for callers that do not need a
// persistent store (cmd/tables, benchmarks, tests).
func Collect(p *Plan, workers int) ([]Record, error) {
	recs := make([]Record, 0, p.Size())
	err := Execute(p, workers, 0, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return recs, nil
}
