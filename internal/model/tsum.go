// Package model is the paper's analytic cost models: closed forms and
// numeric chains that price the protocols, not code that verifies them.
// Despite the name, no protocol "model" in the verification sense lives
// here — exhaustive state-space model checking is internal/mcheck.
//
// tsum.go is the §4.2 derivation: the expected number of extra cache
// commands the two-bit scheme generates per memory reference relative to
// the full map, reproduced exactly (Table 4-1). dubois.go reconstructs the
// Dubois–Briggs [3] traffic model as a Markov chain over the global state
// of one shared block (Table 4-2); reference [3]'s closed form is not in
// the paper, so the chain is a faithful substitute documented in DESIGN.md.
// cost.go is the §2.4.2/§3.1 directory-storage economics.
package model

import "fmt"

// SharingCase holds the workload parameters of the §4.2 model: the stream
// of memory references is a merge of private and shared streams.
type SharingCase struct {
	Name string
	Q    float64 // probability the next reference is to a shared block
	H    float64 // hit ratio of shared blocks in the cache
	P1   float64 // P(Present1): shared block has exactly one clean copy
	PS   float64 // P(Present*): shared block is in the "zero or more" state
	PM   float64 // P(PresentM): shared block is modified in one cache
}

// Validate reports an error if any probability is out of range.
func (c SharingCase) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Q", c.Q}, {"H", c.H}, {"P1", c.P1}, {"P*", c.PS}, {"PM", c.PM}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("model: %s = %v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// The three sharing levels evaluated in §4.3.
var (
	// LowSharing is case 1: q=0.01, h=0.95 ("execution of independent
	// processes").
	LowSharing = SharingCase{Name: "low", Q: 0.01, H: 0.95, P1: 0.06, PS: 0.01, PM: 0.03}
	// ModerateSharing is case 2: q=0.05, h=0.90.
	ModerateSharing = SharingCase{Name: "moderate", Q: 0.05, H: 0.90, P1: 0.25, PS: 0.05, PM: 0.10}
	// HighSharing is case 3: q=0.10, h=0.80 ("very high and particularly
	// write intensive").
	HighSharing = SharingCase{Name: "high", Q: 0.10, H: 0.80, P1: 0.35, PS: 0.10, PM: 0.35}
)

// Table41Cases returns the three cases in the paper's order.
func Table41Cases() []SharingCase {
	return []SharingCase{LowSharing, ModerateSharing, HighSharing}
}

// Table41N and Table41W are the axes of Table 4-1.
var (
	Table41N = []int{4, 8, 16, 32, 64}
	Table41W = []float64{0.1, 0.2, 0.3, 0.4}
)

// TRM returns the average number of extra commands per memory request due
// to read misses:
//
//	T_RM = (n-2)·q·(1-w)·(1-h)·P(PM)
//
// A broadcast is required only when the block is PresentM; of the n-1
// commands received, one reaches the owner and the idle requester loses no
// cycle, leaving n-2 unnecessary commands.
func TRM(c SharingCase, n int, w float64) float64 {
	return float64(n-2) * c.Q * (1 - w) * (1 - c.H) * c.PM
}

// TWM returns the extra commands per memory request due to write misses:
//
//	T_WM = (n-2)·q·w·(1-h)·(P(PM)+P(P1)) + (n-1)·q·w·(1-h)·P(P*)
//
// PresentM and Present1 have one necessary recipient (n-2 wasted);
// Present* may have none (up to n-1 wasted).
func TWM(c SharingCase, n int, w float64) float64 {
	return float64(n-2)*c.Q*w*(1-c.H)*(c.PM+c.P1) +
		float64(n-1)*c.Q*w*(1-c.H)*c.PS
}

// TWH returns the extra commands per memory request due to write hits on
// unmodified blocks:
//
//	T_WH = (n-1)·q·w·h·P(P*) / (P(P1)+P(PM)+P(P*))
//
// Only Present* requires a broadcast, and since the block is known to be
// cached the state probability is conditioned on presence.
func TWH(c SharingCase, n int, w float64) float64 {
	denom := c.P1 + c.PM + c.PS
	if denom == 0 {
		return 0
	}
	return float64(n-1) * c.Q * w * c.H * c.PS / denom
}

// TSum returns T_SUM = T_RM + T_WM + T_WH: the extra commands one cache's
// memory requests impose on the system.
func TSum(c SharingCase, n int, w float64) float64 {
	return TRM(c, n, w) + TWM(c, n, w) + TWH(c, n, w)
}

// Overhead41 returns the Table 4-1 cell value (n-1)·T_SUM: the extra
// commands a single cache receives per memory reference, caused by all
// other caches.
func Overhead41(c SharingCase, n int, w float64) float64 {
	return float64(n-1) * TSum(c, n, w)
}

// Table41 computes the full Table 4-1 grid: [case][w][n].
func Table41() [][][]float64 {
	cases := Table41Cases()
	out := make([][][]float64, len(cases))
	for ci, c := range cases {
		out[ci] = make([][]float64, len(Table41W))
		for wi, w := range Table41W {
			out[ci][wi] = make([]float64, len(Table41N))
			for ni, n := range Table41N {
				out[ci][wi][ni] = Overhead41(c, n, w)
			}
		}
	}
	return out
}

// PaperTable41 holds the values printed in the paper, for the
// reproduction comparison in EXPERIMENTS.md. Two known defects of the
// original are preserved as printed: the case-1 w=0.3 n=16 cell reads
// 0.970 (the formula gives 0.070, an obvious typo) and the case-1 w=0.1
// n=4 cell reads 0.000 although the formula rounds to 0.001.
var PaperTable41 = [][][]float64{
	{ // case 1: low sharing
		{0.000, 0.005, 0.025, 0.109, 0.449},
		{0.002, 0.010, 0.047, 0.203, 0.840},
		{0.003, 0.015, 0.970, 0.298, 1.231},
		{0.004, 0.020, 0.092, 0.392, 1.622},
	},
	{ // case 2: moderate sharing
		{0.009, 0.055, 0.263, 1.146, 4.773},
		{0.015, 0.089, 0.422, 1.827, 7.593},
		{0.021, 0.123, 0.580, 2.508, 10.413},
		{0.027, 0.157, 0.739, 3.188, 13.233},
	},
	{ // case 3: high sharing
		{0.057, 0.382, 1.887, 8.314, 34.839},
		{0.072, 0.470, 2.304, 10.118, 42.336},
		{0.087, 0.559, 2.721, 11.923, 49.833},
		{0.102, 0.647, 3.138, 13.727, 57.330},
	},
}

// MaxViableProcessors returns the largest table-axis n for which the
// two-bit scheme's added overhead (n-1)·T_SUM stays below threshold — the
// §4.3 viability analysis ("for values of (n-1)T_SUM near 1.0, each cache
// receives on average one command for each memory request it services").
// Returns 0 if even n=4 exceeds the threshold.
func MaxViableProcessors(c SharingCase, w, threshold float64) int {
	best := 0
	for _, n := range Table41N {
		if Overhead41(c, n, w) < threshold {
			best = n
		}
	}
	return best
}
