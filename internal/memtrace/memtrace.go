// Package memtrace records and replays memory-reference traces, making
// the simulator trace-driven: a workload can be captured once (from any
// generator, or converted from an external source) and replayed
// bit-identically across configurations — the methodology 1980s coherence
// studies used with real address traces, which the paper's authors did
// not yet have for multiprocessors.
//
// Two interchangeable encodings are provided: a line-oriented text format
// ("<proc> <R|W> <block> [s]") for hand-written fixtures, and a compact
// varint binary format for long captures.
package memtrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"twobit/internal/addr"
	"twobit/internal/workload"
)

// Trace holds one reference stream per processor.
type Trace struct {
	perProc [][]addr.Ref
	blocks  int
}

// NewTrace returns an empty trace for procs processors.
func NewTrace(procs int) *Trace {
	if procs < 1 {
		panic("memtrace: need at least one processor")
	}
	return &Trace{perProc: make([][]addr.Ref, procs)}
}

// Procs returns the number of processor streams.
func (t *Trace) Procs() int { return len(t.perProc) }

// Len returns the number of recorded references for proc.
func (t *Trace) Len(proc int) int { return len(t.perProc[proc]) }

// Append adds one reference to proc's stream.
func (t *Trace) Append(proc int, r addr.Ref) {
	t.perProc[proc] = append(t.perProc[proc], r)
	if int(r.Block) >= t.blocks {
		t.blocks = int(r.Block) + 1
	}
}

// Record captures refsPerProc references per processor from gen. The
// package's generators produce independent per-processor streams, so
// pre-drawing preserves exactly what a live run would see.
func Record(gen workload.Generator, procs, refsPerProc int) *Trace {
	t := NewTrace(procs)
	for p := 0; p < procs; p++ {
		for i := 0; i < refsPerProc; i++ {
			t.Append(p, gen.Next(p))
		}
	}
	return t
}

// replayer adapts a Trace to workload.Generator. Exhausted streams wrap
// around, so replaying more references than recorded is well defined.
type replayer struct {
	t   *Trace
	pos []int
}

// Generator returns a replaying generator over the trace. Each call
// returns an independent replay (its own positions).
func (t *Trace) Generator() workload.Generator {
	return &replayer{t: t, pos: make([]int, t.Procs())}
}

// Blocks implements workload.Generator.
func (r *replayer) Blocks() int {
	if r.t.blocks < 1 {
		return 1
	}
	return r.t.blocks
}

// Next implements workload.Generator.
func (r *replayer) Next(proc int) addr.Ref {
	stream := r.t.perProc[proc]
	if len(stream) == 0 {
		panic(fmt.Sprintf("memtrace: processor %d has an empty stream", proc))
	}
	ref := stream[r.pos[proc]%len(stream)]
	r.pos[proc]++
	return ref
}

// WriteText encodes the trace in the line format, streams interleaved
// round-robin so the file reads roughly in "machine order".
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# memtrace text v1 procs=%d\n", t.Procs())
	maxLen := 0
	for _, s := range t.perProc {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for i := 0; i < maxLen; i++ {
		for p, s := range t.perProc {
			if i >= len(s) {
				continue
			}
			r := s[i]
			op := "R"
			if r.Write {
				op = "W"
			}
			if r.Shared {
				fmt.Fprintf(bw, "%d %s %d s\n", p, op, uint64(r.Block))
			} else {
				fmt.Fprintf(bw, "%d %s %d\n", p, op, uint64(r.Block))
			}
		}
	}
	return bw.Flush()
}

// ReadText decodes the line format.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var t *Trace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if t == nil {
				if i := strings.Index(line, "procs="); i >= 0 {
					n, err := strconv.Atoi(strings.TrimSpace(line[i+len("procs="):]))
					if err != nil {
						return nil, fmt.Errorf("memtrace: line %d: bad procs header: %w", lineNo, err)
					}
					if n < 1 || n > maxStreamProcs {
						return nil, fmt.Errorf("memtrace: line %d: procs=%d outside 1..%d", lineNo, n, maxStreamProcs)
					}
					t = NewTrace(n)
				}
			}
			continue
		}
		if t == nil {
			return nil, fmt.Errorf("memtrace: line %d: reference before procs header", lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("memtrace: line %d: want `proc R|W block [s]`, got %q", lineNo, line)
		}
		proc, err := strconv.Atoi(fields[0])
		if err != nil || proc < 0 || proc >= t.Procs() {
			return nil, fmt.Errorf("memtrace: line %d: bad processor %q", lineNo, fields[0])
		}
		var write bool
		switch fields[1] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("memtrace: line %d: bad op %q", lineNo, fields[1])
		}
		block, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("memtrace: line %d: bad block %q", lineNo, fields[2])
		}
		shared := len(fields) > 3 && fields[3] == "s"
		t.Append(proc, addr.Ref{Block: addr.Block(block), Write: write, Shared: shared})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("memtrace: reading: %w", err)
	}
	if t == nil {
		return nil, fmt.Errorf("memtrace: empty input (missing header?)")
	}
	return t, nil
}

// Binary format: magic, procs, then per processor: count followed by
// count records of (block varint, flags byte).
var binMagic = []byte("MTRC1")

// WriteBinary encodes the trace in the compact varint format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic); err != nil {
		return fmt.Errorf("memtrace: writing magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(t.Procs())); err != nil {
		return fmt.Errorf("memtrace: writing proc count: %w", err)
	}
	for _, stream := range t.perProc {
		if err := putUvarint(uint64(len(stream))); err != nil {
			return fmt.Errorf("memtrace: writing stream length: %w", err)
		}
		for _, r := range stream {
			if err := putUvarint(uint64(r.Block)); err != nil {
				return fmt.Errorf("memtrace: writing block: %w", err)
			}
			var flags byte
			if r.Write {
				flags |= 1
			}
			if r.Shared {
				flags |= 2
			}
			if err := bw.WriteByte(flags); err != nil {
				return fmt.Errorf("memtrace: writing flags: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes the varint format.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("memtrace: reading magic: %w", err)
	}
	if string(magic) != string(binMagic) {
		return nil, fmt.Errorf("memtrace: bad magic %q", magic)
	}
	procs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("memtrace: reading proc count: %w", err)
	}
	if procs == 0 || procs > 1<<16 {
		return nil, fmt.Errorf("memtrace: implausible processor count %d", procs)
	}
	t := NewTrace(int(procs))
	for p := 0; p < int(procs); p++ {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("memtrace: proc %d: reading stream length: %w", p, err)
		}
		for i := uint64(0); i < count; i++ {
			block, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("memtrace: proc %d ref %d: reading block: %w", p, i, err)
			}
			flags, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("memtrace: proc %d ref %d: reading flags: %w", p, i, err)
			}
			t.Append(p, addr.Ref{
				Block:  addr.Block(block),
				Write:  flags&1 != 0,
				Shared: flags&2 != 0,
			})
		}
	}
	return t, nil
}
