package software

import (
	"testing"

	"twobit/internal/addr"
	"twobit/internal/cache"
	"twobit/internal/memory"
	"twobit/internal/network"
	"twobit/internal/proto"
	"twobit/internal/sim"
)

type rig struct {
	kernel *sim.Kernel
	ctrl   *Controller
	agents []*Agent
	nextV  uint64
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{kernel: &sim.Kernel{}}
	net := network.NewCrossbar(r.kernel, 1)
	topo := proto.Topology{Caches: n, Modules: 1}
	space := addr.Space{Blocks: 64, Modules: 1}
	lat := proto.Latencies{CacheHit: 1, Memory: 5, CtrlService: 1}
	mem := memory.NewModule(space, 0, lat.Memory)
	r.ctrl = New(Config{Module: 0, Topo: topo, Space: space, Lat: lat}, r.kernel, net, mem)
	for k := 0; k < n; k++ {
		store := cache.New(cache.Config{Sets: 8, Assoc: 2})
		r.agents = append(r.agents, NewAgent(AgentConfig{
			Index: k, Topo: topo, Lat: lat,
		}, r.kernel, net, store))
	}
	return r
}

func (r *rig) do(t *testing.T, k int, block addr.Block, write, shared bool) uint64 {
	t.Helper()
	var version uint64
	if write {
		r.nextV++
		version = r.nextV
	}
	var got uint64
	completed := false
	r.agents[k].Access(addr.Ref{Block: block, Write: write, Shared: shared}, version, func(v uint64) {
		got = v
		completed = true
	})
	r.kernel.Run()
	if !completed {
		t.Fatalf("cache %d: reference did not complete", k)
	}
	return got
}

func TestSharedBlocksNeverCached(t *testing.T) {
	r := newRig(t, 2)
	r.do(t, 0, 3, false, true)
	r.do(t, 0, 3, true, true)
	r.do(t, 0, 3, false, true)
	if r.agents[0].Store().Count() != 0 {
		t.Fatal("a public block entered the cache")
	}
}

func TestSharedWritesAlwaysVisible(t *testing.T) {
	r := newRig(t, 3)
	v := r.do(t, 0, 3, true, true)
	if got := r.do(t, 1, 3, false, true); got != v {
		t.Fatalf("proc 1 read v%d, want v%d", got, v)
	}
	if got := r.do(t, 2, 3, false, true); got != v {
		t.Fatalf("proc 2 read v%d, want v%d", got, v)
	}
	if r.ctrl.MemVersion(3) != v {
		t.Fatal("memory stale")
	}
}

func TestPrivateBlocksCachedWriteBack(t *testing.T) {
	r := newRig(t, 1)
	r.do(t, 0, 20, false, false) // fill
	v := r.do(t, 0, 20, true, false)
	f := r.agents[0].Store().Lookup(20)
	if f == nil || !f.Modified || f.Data != v {
		t.Fatalf("private frame = %+v", f)
	}
	// Memory not yet updated (write-back policy).
	if r.ctrl.MemVersion(20) == v {
		t.Fatal("private write went through to memory prematurely")
	}
	// Evict (blocks 36 and 52 conflict with 20 mod 8 = 4).
	r.do(t, 0, 36, false, false)
	r.do(t, 0, 52, false, false)
	if r.ctrl.MemVersion(20) != v {
		t.Fatal("write-back on eviction missing")
	}
}

func TestPrivateWriteMissFillsThenModifies(t *testing.T) {
	r := newRig(t, 1)
	v := r.do(t, 0, 20, true, false)
	f := r.agents[0].Store().Lookup(20)
	if f == nil || !f.Modified || f.Data != v {
		t.Fatalf("frame after write miss = %+v", f)
	}
}

func TestNoCoherenceTrafficAtAll(t *testing.T) {
	r := newRig(t, 4)
	for i := 0; i < 50; i++ {
		r.do(t, i%4, 3, i%2 == 0, true)
		r.do(t, i%4, addr.Block(16+(i%4)*8), i%3 == 0, false)
	}
	for k := 0; k < 4; k++ {
		if got := r.agents[k].SideStats().CommandsReceived.Value(); got != 0 {
			t.Fatalf("cache %d received %d coherence commands; the static scheme has none", k, got)
		}
	}
}

func TestUncachedOpsCounted(t *testing.T) {
	r := newRig(t, 1)
	r.do(t, 0, 3, false, true)
	r.do(t, 0, 3, true, true)
	s := r.ctrl.CtrlStats()
	if s.ReadMisses.Value() != 1 || s.WriteMisses.Value() != 1 {
		t.Fatalf("uncached ops counted %d/%d", s.ReadMisses.Value(), s.WriteMisses.Value())
	}
}
