// Command coherencetrace records and exports sim-time traces from any
// run of a sweep campaign. Campaigns store only numbers; because every
// run is hermetic and seeded from (root seed, run id), any run can be
// replayed on demand with full event tracing attached, filtered, and
// exported for chrome://tracing / Perfetto:
//
//	coherencetrace -plan plan.json -run 12                         # chrome trace to stdout
//	coherencetrace -plan plan.json -run 12 -o run12.json           # ... to a file
//	coherencetrace -plan plan.json -run 12 -component cache0,ctrl0 # one cache + one controller
//	coherencetrace -plan plan.json -run 12 -addr 42                # one block's transactions
//	coherencetrace -plan plan.json -run 12 -from 100 -to 500       # a tick window
//	coherencetrace -plan plan.json -run 12 -format summary         # counters + histograms as text
//	coherencetrace -plan plan.json -run 12 -format spans           # per-reference transaction spans
//	coherencetrace -plan plan.json -run 12 -format spans -txn 812  # one transaction's causal chain
//	coherencetrace -plan plan.json -run 12 -format spans -class write_miss
//
// The spans format renders each memory reference as a flame-style span
// on its cache's track — the class span on top, its latency phases
// (req_transit, queue, memory, writeback, data_return, ...) tiling it
// below, with flow arrows chaining the phases causally. It is the
// per-transaction view of the Table 4-1 latency attribution matrix.
//
// The replay is deterministic: the same plan and run id export the same
// bytes on every invocation, so traces diff cleanly across code changes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"twobit/internal/obs"
	"twobit/internal/sim"
	"twobit/internal/sweep"
	"twobit/internal/system"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coherencetrace: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	planPath := flag.String("plan", "", "campaign plan JSON file ('-' for stdin)")
	runID := flag.Int("run", 0, "run id within the plan to replay (see sweep's store)")
	format := flag.String("format", "chrome", "output: chrome (trace-event JSON), spans (transaction-span JSON), or summary (metrics text)")
	components := flag.String("component", "", "comma-separated track filter (e.g. cache0,ctrl1,net); empty keeps all")
	addrFlag := flag.Int64("addr", -1, "keep only events/spans for this block address (-1 keeps all)")
	txn := flag.Int64("txn", -1, "spans format: keep only this transaction id (-1 keeps all)")
	class := flag.String("class", "", "spans format: keep only this reference class (read_miss, write_upgrade, ...)")
	from := flag.Int64("from", 0, "keep only events at tick ≥ from")
	to := flag.Int64("to", 0, "keep only events at tick ≤ to (0 = unbounded)")
	ring := flag.Int("ring", obs.DefaultRingCapacity, "event ring capacity; oldest events drop beyond this (also bounds span retention)")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	if *planPath == "" {
		return fmt.Errorf("no -plan given (the same plan file the campaign ran with)")
	}
	plan, err := readPlan(*planPath)
	if err != nil {
		return err
	}

	spansMode := *format == "spans"
	ringCap := *ring
	if spansMode {
		ringCap = 0 // spans bypass the event ring; skip its allocation
	}
	rec := obs.New(ringCap)
	if spansMode {
		rec.EnableSpans(*ring)
	}
	res, err := sweep.TracePoint(plan, *runID, rec)
	if err != nil {
		return err
	}

	// Stream through one buffer regardless of destination: trace exports
	// run to hundreds of thousands of lines, and writing them unbuffered
	// to stdout costs a syscall per event.
	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := bufio.NewWriterSize(dst, 1<<16)
	defer w.Flush()

	switch *format {
	case "chrome":
		f := obs.Filter{
			HasBlock: *addrFlag >= 0,
			Block:    *addrFlag,
			From:     sim.Time(*from),
			To:       sim.Time(*to),
		}
		if *components != "" {
			f.Components = strings.Split(*components, ",")
		}
		if err := obs.WriteChromeTrace(w, rec, f); err != nil {
			return err
		}
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "note: ring dropped %d oldest events; rerun with -ring %d for the full run\n",
				n, nextPow2(rec.EventCount()+int(n)))
		}
		return w.Flush()
	case "spans":
		f := obs.SpanFilter{
			Txn:      *txn,
			Class:    *class,
			HasBlock: *addrFlag >= 0,
			Block:    *addrFlag,
		}
		if err := obs.WriteSpanTrace(w, rec.Spans(), f); err != nil {
			return err
		}
		if n := rec.Spans().Truncated(); n > 0 {
			fmt.Fprintf(os.Stderr, "note: span retention dropped %d newest spans; rerun with -ring %d for the full run\n",
				n, nextPow2(len(rec.Spans().Finished())+int(n)))
		}
		return w.Flush()
	case "summary":
		if err := writeSummary(w, rec, res); err != nil {
			return err
		}
		return w.Flush()
	default:
		return fmt.Errorf("unknown -format %q (want chrome, spans, or summary)", *format)
	}
}

// writeSummary renders the run's metrics snapshot as readable text: one
// line per counter, and count/mean/p50/p99/max per histogram.
func writeSummary(w io.Writer, rec *obs.Recorder, res system.Results) error {
	snap := rec.Snapshot()
	fmt.Fprintf(w, "%s\n\n", res.String())
	fmt.Fprintf(w, "counters (%d):\n", len(snap.Counters))
	for _, c := range snap.Counters {
		fmt.Fprintf(w, "  %-32s %12d\n", c.Name, c.Value)
	}
	fmt.Fprintf(w, "\nhistograms (%d):\n", len(snap.Hists))
	for _, h := range snap.Hists {
		fmt.Fprintf(w, "  %-32s count %10d  mean %10.2f  p50 %6d  p99 %6d  max %6d\n",
			h.Name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max)
	}
	fmt.Fprintf(w, "\nevents recorded: %d (dropped %d)\n", rec.EventCount(), rec.Dropped())
	return nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func readPlan(path string) (*sweep.Plan, error) {
	if path == "-" {
		return sweep.ReadPlan(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sweep.ReadPlan(f)
}
