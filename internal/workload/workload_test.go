package workload

import (
	"math"
	"testing"

	"twobit/internal/addr"
)

func spCfg(procs int) SharedPrivateConfig {
	return SharedPrivateConfig{
		Procs: procs, SharedBlocks: 16, Q: 0.05, W: 0.3,
		PrivateHit: 0.9, PrivateWrite: 0.3, HotBlocks: 32, ColdBlocks: 256, Seed: 7,
	}
}

func TestSharedPrivateValidate(t *testing.T) {
	cfg := spCfg(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Q = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("Q > 1 accepted")
	}
	bad = cfg
	bad.Procs = 0
	if err := bad.Validate(); err == nil {
		t.Error("Procs = 0 accepted")
	}
	bad = cfg
	bad.SharedBlocks = 0
	if err := bad.Validate(); err == nil {
		t.Error("SharedBlocks = 0 accepted")
	}
	bad = cfg
	bad.HotBlocks = 0
	if err := bad.Validate(); err == nil {
		t.Error("HotBlocks = 0 accepted")
	}
}

func TestSharedPrivateRatios(t *testing.T) {
	g := NewSharedPrivate(spCfg(4))
	const draws = 200000
	shared, sharedWrites := 0, 0
	for i := 0; i < draws; i++ {
		r := g.Next(i % 4)
		if r.Shared {
			shared++
			if int(r.Block) >= 16 {
				t.Fatalf("shared ref to block %v outside pool", r.Block)
			}
			if r.Write {
				sharedWrites++
			}
		} else if int(r.Block) < 16 {
			t.Fatalf("private ref landed in the shared pool: %v", r.Block)
		}
	}
	qHat := float64(shared) / draws
	if math.Abs(qHat-0.05) > 0.005 {
		t.Errorf("measured q = %v, want ≈ 0.05", qHat)
	}
	wHat := float64(sharedWrites) / float64(shared)
	if math.Abs(wHat-0.3) > 0.03 {
		t.Errorf("measured w = %v, want ≈ 0.3", wHat)
	}
}

func TestSharedPrivateDisjointPrivateRegions(t *testing.T) {
	g := NewSharedPrivate(spCfg(3))
	seen := make(map[addr.Block]int)
	for i := 0; i < 30000; i++ {
		p := i % 3
		r := g.Next(p)
		if r.Shared {
			continue
		}
		if prev, ok := seen[r.Block]; ok && prev != p {
			t.Fatalf("block %v referenced privately by procs %d and %d", r.Block, prev, p)
		}
		seen[r.Block] = p
	}
}

func TestSharedPrivateDeterminism(t *testing.T) {
	a := NewSharedPrivate(spCfg(2))
	b := NewSharedPrivate(spCfg(2))
	for i := 0; i < 1000; i++ {
		if a.Next(i%2) != b.Next(i%2) {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSharedPrivateBlocksBound(t *testing.T) {
	g := NewSharedPrivate(spCfg(4))
	max := g.Blocks()
	for i := 0; i < 50000; i++ {
		if r := g.Next(i % 4); int(r.Block) >= max {
			t.Fatalf("ref %v beyond Blocks() = %d", r.Block, max)
		}
	}
}

func TestMatMulPattern(t *testing.T) {
	g := NewMatMul(2, 8, 8, 4)
	if g.Blocks() != 8+8+2*4 {
		t.Fatalf("Blocks = %d", g.Blocks())
	}
	writesToOwnSlice := 0
	for i := 0; i < 1000; i++ {
		for p := 0; p < 2; p++ {
			r := g.Next(p)
			if int(r.Block) >= g.Blocks() {
				t.Fatalf("out of range ref %v", r.Block)
			}
			if r.Write {
				base := 16 + p*4
				if int(r.Block) < base || int(r.Block) >= base+4 {
					t.Fatalf("proc %d wrote outside its C slice: %v", p, r.Block)
				}
				writesToOwnSlice++
			} else if !r.Shared {
				t.Fatal("reads of A/B must be marked shared")
			}
		}
	}
	if writesToOwnSlice == 0 {
		t.Fatal("no writes generated")
	}
}

func TestProducerConsumer(t *testing.T) {
	g := NewProducerConsumer(3, 4)
	if g.Blocks() != 4 {
		t.Fatalf("Blocks = %d", g.Blocks())
	}
	for i := 0; i < 100; i++ {
		if r := g.Next(0); !r.Write {
			t.Fatal("producer generated a read")
		}
		if r := g.Next(1); r.Write {
			t.Fatal("consumer generated a write")
		}
	}
}

func TestLockContentionReadThenWriteSameBlock(t *testing.T) {
	g := NewLockContention(2, 4, 9)
	for i := 0; i < 100; i++ {
		r1 := g.Next(0)
		r2 := g.Next(0)
		if r1.Write || !r2.Write {
			t.Fatalf("pair %d: want read then write, got %v %v", i, r1, r2)
		}
		if r1.Block != r2.Block {
			t.Fatalf("pair %d: read %v but wrote %v", i, r1.Block, r2.Block)
		}
	}
}

func TestMigrationMovesTasks(t *testing.T) {
	g := NewMigration(4, 4, 8, 50, 3)
	if g.Blocks() != 32 {
		t.Fatalf("Blocks = %d", g.Blocks())
	}
	// After enough references, processor 0 must have touched blocks from
	// more than one task's working set (i.e., it migrated).
	sets := map[int]bool{}
	for i := 0; i < 1000; i++ {
		r := g.Next(0)
		sets[int(r.Block)/8] = true
	}
	if len(sets) < 2 {
		t.Fatal("processor 0 never migrated")
	}
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"matmul":   func() { NewMatMul(0, 1, 1, 1) },
		"prodcons": func() { NewProducerConsumer(1, 4) },
		"locks":    func() { NewLockContention(0, 1, 1) },
		"migr":     func() { NewMigration(1, 1, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad args did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBarrierPattern(t *testing.T) {
	g := NewBarrier(2, 2, 3)
	if g.Blocks() != 4 {
		t.Fatalf("Blocks = %d", g.Blocks())
	}
	// First episode for proc 0: read c0, write c0, then 3 reads of flag 1.
	refs := make([]addr.Ref, 5)
	for i := range refs {
		refs[i] = g.Next(0)
	}
	if refs[0].Write || refs[0].Block != 0 {
		t.Fatalf("step 0 = %v, want read of counter 0", refs[0])
	}
	if !refs[1].Write || refs[1].Block != 0 {
		t.Fatalf("step 1 = %v, want write of counter 0", refs[1])
	}
	for i := 2; i < 5; i++ {
		if refs[i].Write || refs[i].Block != 1 {
			t.Fatalf("step %d = %v, want spin read of flag 1", i, refs[i])
		}
	}
	// Second episode moves to the other barrier pair.
	if r := g.Next(0); r.Block != 2 {
		t.Fatalf("episode 2 counter = %v, want blk#2", r.Block)
	}
	for i := 0; i < 1000; i++ {
		if r := g.Next(1); int(r.Block) >= g.Blocks() {
			t.Fatalf("out of range: %v", r)
		}
	}
}

func TestBarrierPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBarrier(0, 1, 1)
}
