// Package eng runs inside the event loop, yet imports the orchestrator:
// the goroutine exemption would leak into kernel-reachable code.
package eng

import (
	"determorchbad/orch"
	"determorchbad/sim"
)

// Run schedules work and leans on the orchestrator from below.
func Run(done chan struct{}) {
	k := &sim.Kernel{}
	k.After(1, func() {})
	orch.Run(done)
}
