package system

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/msg"
	"twobit/internal/network"
	"twobit/internal/rng"
)

// DMAConfig adds uncached I/O devices to a machine — the concern §2.2
// raises ("I/O handling in the case of a write-back policy raises also
// some difficulties") and §2.3 alludes to (the invalidation logic "may
// already be present for I/O concurrency purposes"). Each device issues
// blocking uncached reads and writes to a range of blocks; the directory
// controllers drain or invalidate cached copies so that device reads see
// the most recent value and device writes are never overwritten by stale
// write-backs. Supported by the TwoBit and FullMap(+E) protocols.
type DMAConfig struct {
	Devices   int     // number of DMA devices
	Blocks    int     // devices touch blocks [0, Blocks); 0 = whole space
	WriteFrac float64 // probability a device operation is a write
}

// Validate reports configuration errors.
func (c DMAConfig) Validate() error {
	if c.Devices < 0 {
		return fmt.Errorf("system: negative DMA device count %d", c.Devices)
	}
	if c.Blocks < 0 {
		return fmt.Errorf("system: negative DMA block range %d", c.Blocks)
	}
	if c.WriteFrac < 0 || c.WriteFrac > 1 {
		return fmt.Errorf("system: DMA WriteFrac %v outside [0,1]", c.WriteFrac)
	}
	return nil
}

// dmaDevice is one uncached I/O device: it issues one blocking operation
// at a time, like the processors.
type dmaDevice struct {
	m      *Machine
	idx    int // device index
	node   network.NodeID
	random *rng.PCG

	pend func(data uint64)
}

func newDMADevice(m *Machine, idx int) *dmaDevice {
	d := &dmaDevice{
		m:      m,
		idx:    idx,
		node:   m.topo.DMANode(idx),
		random: rng.New(m.cfg.Seed^0xD3A, uint64(idx)+1000),
	}
	m.net.Attach(d.node, d)
	return d
}

// reset restores the device to its freshly-constructed state under the
// machine's current config, keeping the network attachment.
func (d *dmaDevice) reset() {
	d.random.Reseed(d.m.cfg.Seed^0xD3A, uint64(d.idx)+1000)
	d.pend = nil
}

// oracleProc returns the device's processor id for oracle bookkeeping
// (devices observe the same coherence rules as processors).
func (d *dmaDevice) oracleProc() int { return d.m.cfg.Procs + d.idx }

// Deliver implements network.Handler: completion replies, plus silently
// ignoring any broadcast copies that reach the device.
func (d *dmaDevice) Deliver(src network.NodeID, m msg.Message) {
	if m.Kind != msg.KindGet {
		return // stray broadcast copy; devices do not participate
	}
	if d.pend == nil {
		panic(fmt.Sprintf("system: DMA device %d: unsolicited %v", d.idx, m))
	}
	done := d.pend
	d.pend = nil
	done(m.Data)
}

// issue chains the device's operations, mirroring Machine.issue.
func (d *dmaDevice) issue(remaining int) {
	m := d.m
	blocks := m.cfg.DMA.Blocks
	if blocks <= 0 || blocks > m.space.Blocks {
		blocks = m.space.Blocks
	}
	block := addr.Block(d.random.Intn(blocks))
	write := d.random.Bool(m.cfg.DMA.WriteFrac)
	var version uint64
	kind := msg.KindUncachedRead
	if write {
		m.nextVersion++
		version = m.nextVersion
		kind = msg.KindUncachedWrite
	}
	var issueLatest uint64
	if m.oracle != nil {
		issueLatest = m.oracle.Latest(block)
	}
	d.pend = func(got uint64) {
		if m.oracle != nil {
			var err error
			if write {
				err = m.oracle.NoteWrite(d.oracleProc(), block, version)
			} else {
				err = m.oracle.CheckLoad(d.oracleProc(), block, issueLatest, got, m.strict)
			}
			if err != nil {
				m.errs = append(m.errs, fmt.Errorf("dma %d: %w", d.idx, err))
			}
		}
		if remaining > 1 {
			d.issue(remaining - 1)
		} else {
			m.completed++
		}
	}
	m.net.Send(d.node, m.topo.CtrlFor(block), msg.Message{
		Kind: kind, Block: block, Cache: -1, Data: version,
	})
}
