// Package orch is a campaign orchestrator: it fans complete simulations
// out to worker goroutines, one kernel per goroutine, and re-sequences
// the results. It is declared in Config.Orchestrators, so its go
// statements need no per-line directives; in exchange nothing
// kernel-reachable may import it.
package orch

import (
	"sync"

	"determorch/eng"
)

// RunAll executes one hermetic simulation per seed on workers goroutines
// and returns the results in seed order regardless of scheduling.
func RunAll(seeds []uint64, workers int) []uint64 {
	type numbered struct {
		i int
		v uint64
	}
	jobs := make(chan numbered)
	results := make(chan numbered)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- numbered{j.i, eng.Run(j.v)}
			}
		}()
	}
	go func() {
		for i, s := range seeds {
			jobs <- numbered{i, s}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	out := make([]uint64, len(seeds))
	for r := range results {
		out[r.i] = r.v
	}
	return out
}
