// Package duplication implements Tang's scheme (§2.4.1): a single central
// memory controller keeps a duplicate copy of every cache's directory and
// consults all of them to determine a block's global state. Knowledge is
// exact, so all commands are directed like the full map's; the cost is the
// centralization the paper criticizes — one controller serves every block,
// and (per the published design's simplicity assumptions) it services one
// command at a time, which is modeled by forcing the single-command
// serializer. The system layer additionally requires Modules == 1.
package duplication

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/directory"
	"twobit/internal/memory"
	"twobit/internal/msg"
	"twobit/internal/network"
	"twobit/internal/proto"
	"twobit/internal/sim"
)

// Config configures the central controller.
type Config struct {
	Topo  proto.Topology
	Space addr.Space
	Lat   proto.Latencies
}

// Controller is the central duplicate-directory controller.
type Controller struct {
	cfg    Config
	kernel *sim.Kernel
	net    network.Network
	mem    *memory.Module
	dup    *directory.DupTagStore
	ser    *proto.Serializer
	stats  proto.CtrlStats

	waiting map[addr.Block]func(cache int, data uint64)
	stashed map[addr.Block][]stashedPut
	// activeSince times each open transaction for occupancy accounting.
	activeSince map[addr.Block]sim.Time
}

type stashedPut struct {
	cache int
	data  uint64
}

// New wires the controller (as module 0's controller node) to the network.
func New(cfg Config, kernel *sim.Kernel, net network.Network, mem *memory.Module) *Controller {
	if cfg.Topo.Modules != 1 {
		panic("duplication: the central controller requires exactly one module")
	}
	c := &Controller{
		cfg:         cfg,
		kernel:      kernel,
		net:         net,
		mem:         mem,
		dup:         directory.NewDupTagStore(cfg.Topo.Caches),
		waiting:     make(map[addr.Block]func(int, uint64)),
		stashed:     make(map[addr.Block][]stashedPut),
		activeSince: make(map[addr.Block]sim.Time),
	}
	// The published design services one command at a time: SingleCommand.
	c.ser = proto.NewSerializer(proto.SingleCommand, c.begin)
	net.Attach(c.node(), c)
	return c
}

// Reset restores the controller to its freshly-constructed state under
// cfg, keeping the network attachment (Topo and Space must match
// construction) and the duplicate-tag/serializer backing storage.
func (c *Controller) Reset(cfg Config) {
	if cfg.Topo != c.cfg.Topo || cfg.Space != c.cfg.Space {
		panic("duplication: Reset shape differs from construction")
	}
	c.cfg = cfg
	c.dup.Reset()
	c.ser.Reset(proto.SingleCommand)
	c.stats = proto.CtrlStats{}
	clear(c.waiting)
	clear(c.stashed)
	clear(c.activeSince)
}

// CtrlStats implements proto.MemSide.
func (c *Controller) CtrlStats() *proto.CtrlStats { return &c.stats }

// State derives the two-bit abstraction for invariants.
func (c *Controller) State(b addr.Block) directory.State { return c.dup.GlobalState(b) }

// Holders returns the exact holder set, for invariants.
func (c *Controller) Holders(b addr.Block) []int { return c.dup.Holders(b) }

// ModifiedBy returns the modifying cache or -1, for invariants.
func (c *Controller) ModifiedBy(b addr.Block) int { return c.dup.ModifiedBy(b) }

// MemVersion returns memory's version of b, for invariants.
func (c *Controller) MemVersion(b addr.Block) uint64 { return c.mem.Read(b) }

// Quiescent reports whether no transaction is active or queued.
func (c *Controller) Quiescent() bool {
	return c.ser.ActiveCount() == 0 && c.ser.QueuedLen() == 0 && len(c.waiting) == 0
}

func (c *Controller) node() network.NodeID                   { return c.cfg.Topo.CtrlNode(0) }
func (c *Controller) send(dst network.NodeID, m msg.Message) { c.net.Send(c.node(), dst, m) }

// Deliver implements network.Handler.
func (c *Controller) Deliver(src network.NodeID, m msg.Message) {
	switch m.Kind {
	case msg.KindRequest, msg.KindEject, msg.KindMRequest:
		c.ser.Submit(proto.Pending{Src: src, M: m})
		c.stats.NoteQueue(c.ser.QueuedLen())
	case msg.KindPut:
		c.handlePut(m)
	case msg.KindMAck:
		// Grants from exact duplicate tags are provably safe; the shared
		// cache agent's confirmation carries no news.
	default:
		panic(fmt.Sprintf("duplication: unexpected %v", m))
	}
}

func (c *Controller) handlePut(m msg.Message) {
	if onData := c.waiting[m.Block]; onData != nil {
		delete(c.waiting, m.Block)
		removed := c.ser.DeleteQueued(m.Block, func(p proto.Pending) bool {
			return p.M.Kind == msg.KindEject && p.M.RW == msg.Write && p.M.Cache == m.Cache
		})
		if removed > 0 {
			c.dup.NoteEvict(m.Cache, m.Block)
		}
		onData(m.Cache, m.Data)
		return
	}
	c.stashed[m.Block] = append(c.stashed[m.Block], stashedPut{cache: m.Cache, data: m.Data})
}

func (c *Controller) begin(p proto.Pending) {
	c.activeSince[p.M.Block] = c.kernel.Now()
	// The duplicated directories must all be searched; charge one service
	// interval per cache directory plus the base service time. This is the
	// "large amount of processing power" the paper notes the scheme needs.
	searchTime := c.cfg.Lat.CtrlService * sim.Time(1+c.cfg.Topo.Caches/8)
	c.kernel.After(searchTime, func() { c.service(p) })
}

func (c *Controller) service(p proto.Pending) {
	switch p.M.Kind {
	case msg.KindRequest:
		c.stats.Requests.Inc()
		if p.M.RW == msg.Read {
			c.readMiss(p)
		} else {
			c.writeMiss(p)
		}
	case msg.KindMRequest:
		c.mrequest(p)
	case msg.KindEject:
		c.eject(p)
	default:
		panic(fmt.Sprintf("duplication: cannot service %v", p.M))
	}
}

func (c *Controller) sendGet(k int, a addr.Block, data uint64) {
	c.send(c.cfg.Topo.CacheNode(k), msg.Message{Kind: msg.KindGet, Block: a, Cache: k, Data: data})
}

func (c *Controller) readMiss(p proto.Pending) {
	c.stats.ReadMisses.Inc()
	k, a := p.M.Cache, p.M.Block
	if owner := c.dup.ModifiedBy(a); owner >= 0 {
		c.purge(a, msg.Read, owner, func(_ int, data uint64) {
			c.kernel.After(c.cfg.Lat.Memory, func() {
				c.mem.Write(a, data)
				c.sendGet(k, a, data)
				c.dup.NoteClean(a)
				c.dup.NoteFill(k, a)
				c.done(a)
			})
		})
		return
	}
	c.kernel.After(c.cfg.Lat.Memory, func() {
		c.sendGet(k, a, c.mem.Read(a))
		c.dup.NoteFill(k, a)
		c.done(a)
	})
}

func (c *Controller) writeMiss(p proto.Pending) {
	c.stats.WriteMisses.Inc()
	k, a := p.M.Cache, p.M.Block
	finish := func(data uint64) {
		c.sendGet(k, a, data)
		c.dup.NoteModify(k, a)
		c.done(a)
	}
	if owner := c.dup.ModifiedBy(a); owner >= 0 {
		c.purge(a, msg.Write, owner, func(_ int, data uint64) {
			c.kernel.After(c.cfg.Lat.Memory, func() {
				c.mem.Write(a, data)
				c.dup.NoteEvict(owner, a)
				finish(data)
			})
		})
		return
	}
	c.invalidateHolders(a, k)
	c.kernel.After(c.cfg.Lat.Memory, func() {
		finish(c.mem.Read(a))
	})
}

func (c *Controller) mrequest(p proto.Pending) {
	c.stats.MRequests.Inc()
	k, a := p.M.Cache, p.M.Block
	holds := false
	for _, h := range c.dup.Holders(a) {
		if h == k {
			holds = true
			break
		}
	}
	if !holds || c.dup.ModifiedBy(a) >= 0 {
		c.stats.MGrantDenied.Inc()
		c.send(c.cfg.Topo.CacheNode(k), msg.Message{Kind: msg.KindMGranted, Block: a, Cache: k, Ok: false})
		c.done(a)
		return
	}
	c.invalidateHolders(a, k)
	c.send(c.cfg.Topo.CacheNode(k), msg.Message{Kind: msg.KindMGranted, Block: a, Cache: k, Ok: true})
	c.dup.NoteModify(k, a)
	c.done(a)
}

func (c *Controller) eject(p proto.Pending) {
	c.stats.Ejects.Inc()
	k, a := p.M.Cache, p.M.Block
	if p.M.RW == msg.Read {
		c.dup.NoteEvict(k, a)
		c.done(a)
		return
	}
	c.await(a, func(_ int, data uint64) {
		c.kernel.After(c.cfg.Lat.Memory, func() {
			c.mem.Write(a, data)
			c.dup.NoteEvict(k, a)
			c.done(a)
		})
	})
}

func (c *Controller) invalidateHolders(a addr.Block, k int) {
	for _, h := range c.dup.Holders(a) {
		if h == k {
			continue
		}
		c.stats.DirectedSends.Inc()
		c.send(c.cfg.Topo.CacheNode(h), msg.Message{Kind: msg.KindInv, Block: a, Cache: h})
		c.dup.NoteEvict(h, a)
	}
	if n := c.ser.DeleteQueued(a, func(p proto.Pending) bool {
		return p.M.Kind == msg.KindMRequest && p.M.Cache != k
	}); n > 0 {
		c.stats.DeletedMRequests.Add(uint64(n))
	}
}

func (c *Controller) purge(a addr.Block, rw msg.RW, owner int, onData func(int, uint64)) {
	if puts := c.stashed[a]; len(puts) > 0 {
		put := puts[0]
		if len(puts) == 1 {
			delete(c.stashed, a)
		} else {
			c.stashed[a] = puts[1:]
		}
		c.ser.DeleteQueued(a, func(p proto.Pending) bool {
			return p.M.Kind == msg.KindEject && p.M.RW == msg.Write && p.M.Cache == put.cache
		})
		c.dup.NoteEvict(put.cache, a)
		c.kernel.After(0, func() { onData(put.cache, put.data) })
		return
	}
	c.stats.DirectedSends.Inc()
	c.send(c.cfg.Topo.CacheNode(owner), msg.Message{Kind: msg.KindPurge, Block: a, Cache: owner, RW: rw})
	c.await(a, onData)
}

func (c *Controller) await(a addr.Block, onData func(int, uint64)) {
	if puts := c.stashed[a]; len(puts) > 0 {
		put := puts[0]
		if len(puts) == 1 {
			delete(c.stashed, a)
		} else {
			c.stashed[a] = puts[1:]
		}
		c.kernel.After(0, func() { onData(put.cache, put.data) })
		return
	}
	if _, dup := c.waiting[a]; dup {
		panic(fmt.Sprintf("duplication: two waiters for %v", a))
	}
	c.waiting[a] = onData
}

func (c *Controller) done(a addr.Block) {
	if since, ok := c.activeSince[a]; ok {
		c.stats.BusyCycles.Add(uint64(c.kernel.Now() - since))
		delete(c.activeSince, a)
	}
	c.ser.Done(a)
}
