package directory

import (
	"testing"
	"testing/quick"

	"twobit/internal/addr"
	"twobit/internal/rng"
)

func TestStateString(t *testing.T) {
	names := map[State]string{
		Absent: "Absent", Present1: "Present1", PresentStar: "Present*", PresentM: "PresentM",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if State(9).String() == "" {
		t.Error("unknown state has empty name")
	}
}

func TestTwoBitMapGetSet(t *testing.T) {
	m := NewTwoBitMap(10)
	for b := 0; b < 10; b++ {
		if m.Get(b) != Absent {
			t.Fatalf("block %d initial state %v", b, m.Get(b))
		}
	}
	m.Set(3, PresentM)
	m.Set(4, Present1)
	m.Set(5, PresentStar)
	if m.Get(3) != PresentM || m.Get(4) != Present1 || m.Get(5) != PresentStar {
		t.Fatal("states not stored independently")
	}
	// Neighbors within the same byte must be untouched.
	if m.Get(2) != Absent || m.Get(6) != Absent {
		t.Fatal("packing disturbed neighbor blocks")
	}
}

func TestTwoBitMapPackingDensity(t *testing.T) {
	m := NewTwoBitMap(1024)
	if m.SizeBytes() != 256 {
		t.Fatalf("1024 blocks use %d bytes, want 256 (2 bits/block)", m.SizeBytes())
	}
	if NewTwoBitMap(5).SizeBytes() != 2 {
		t.Fatal("rounding up to whole bytes failed")
	}
}

func TestTwoBitMapEconomyVsFullMap(t *testing.T) {
	// The paper's §2.4.2 example: 16 processors means 17 bits per block for
	// the full map vs 2 for the two-bit map, independent of n.
	blocks := 4096
	two := NewTwoBitMap(blocks)
	full := NewFullMap(blocks, 16)
	if two.SizeBytes() >= full.SizeBytes() {
		t.Fatalf("two-bit map (%dB) not smaller than full map (%dB)", two.SizeBytes(), full.SizeBytes())
	}
	full64 := NewFullMap(blocks, 64)
	if full64.SizeBytes() <= full.SizeBytes() {
		t.Fatal("full map cost did not grow with n")
	}
	if NewTwoBitMap(blocks).SizeBytes() != two.SizeBytes() {
		t.Fatal("two-bit map cost varies")
	}
}

func TestTwoBitMapBoundsPanic(t *testing.T) {
	m := NewTwoBitMap(4)
	for _, fn := range []func(){
		func() { m.Get(4) },
		func() { m.Get(-1) },
		func() { m.Set(4, Absent) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPropertyTwoBitMapRandomOps(t *testing.T) {
	r := rng.New(5, 9)
	if err := quick.Check(func(_ uint8) bool {
		m := NewTwoBitMap(64)
		shadow := make([]State, 64)
		for i := 0; i < 500; i++ {
			b := r.Intn(64)
			s := State(r.Intn(4))
			m.Set(b, s)
			shadow[b] = s
		}
		for b := 0; b < 64; b++ {
			if m.Get(b) != shadow[b] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFullMapPresence(t *testing.T) {
	m := NewFullMap(8, 4)
	m.SetPresent(2, 0, true)
	m.SetPresent(2, 3, true)
	if !m.Present(2, 0) || m.Present(2, 1) || !m.Present(2, 3) {
		t.Fatal("presence bits wrong")
	}
	h := m.Holders(2)
	if len(h) != 2 || h[0] != 0 || h[1] != 3 {
		t.Fatalf("Holders = %v", h)
	}
	if m.HolderCount(2) != 2 {
		t.Fatalf("HolderCount = %d", m.HolderCount(2))
	}
	m.SetPresent(2, 0, false)
	if m.Present(2, 0) || m.HolderCount(2) != 1 {
		t.Fatal("clearing presence failed")
	}
}

func TestFullMapModifiedAndClear(t *testing.T) {
	m := NewFullMap(4, 2)
	m.SetPresent(1, 1, true)
	m.SetModified(1, true)
	if !m.Modified(1) {
		t.Fatal("modified bit not set")
	}
	m.Clear(1)
	if m.Modified(1) || m.HolderCount(1) != 0 {
		t.Fatal("Clear incomplete")
	}
}

func TestFullMapGlobalState(t *testing.T) {
	m := NewFullMap(4, 4)
	if m.GlobalState(0) != Absent {
		t.Fatal("empty block not Absent")
	}
	m.SetPresent(0, 1, true)
	if m.GlobalState(0) != Present1 {
		t.Fatal("one holder not Present1")
	}
	m.SetPresent(0, 2, true)
	if m.GlobalState(0) != PresentStar {
		t.Fatal("two holders not Present*")
	}
	m.SetPresent(0, 2, false)
	m.SetModified(0, true)
	if m.GlobalState(0) != PresentM {
		t.Fatal("modified not PresentM")
	}
}

func TestFullMapConstructionLimits(t *testing.T) {
	for _, caches := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFullMap with %d caches did not panic", caches)
				}
			}()
			NewFullMap(4, caches)
		}()
	}
}

func TestTranslationBufferHitMiss(t *testing.T) {
	tb := NewTranslationBuffer(2)
	if _, ok := tb.Lookup(1); ok {
		t.Fatal("empty buffer hit")
	}
	tb.Record(1, []int{0, 2})
	owners, ok := tb.Lookup(1)
	if !ok || len(owners) != 2 || owners[0] != 0 || owners[1] != 2 {
		t.Fatalf("Lookup = %v, %v", owners, ok)
	}
	if tb.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", tb.HitRatio())
	}
}

func TestTranslationBufferLRUEviction(t *testing.T) {
	tb := NewTranslationBuffer(2)
	tb.Record(1, []int{0})
	tb.Record(2, []int{1})
	tb.Lookup(1) // refresh 1; 2 becomes LRU
	tb.Record(3, []int{2})
	if _, ok := tb.Lookup(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := tb.Lookup(1); !ok {
		t.Fatal("refreshed entry 1 was evicted")
	}
	if tb.Stats().Evictions.Value() != 1 {
		t.Fatalf("evictions = %d", tb.Stats().Evictions.Value())
	}
}

func TestTranslationBufferOwnerMaintenance(t *testing.T) {
	tb := NewTranslationBuffer(4)
	tb.Record(7, []int{1})
	tb.AddOwner(7, 3)
	owners, _ := tb.Lookup(7)
	if len(owners) != 2 || owners[1] != 3 {
		t.Fatalf("owners after AddOwner = %v", owners)
	}
	tb.RemoveOwner(7, 1)
	owners, _ = tb.Lookup(7)
	if len(owners) != 1 || owners[0] != 3 {
		t.Fatalf("owners after RemoveOwner = %v", owners)
	}
	tb.Drop(7)
	if _, ok := tb.Lookup(7); ok {
		t.Fatal("entry survived Drop")
	}
	// Mutations of absent entries are no-ops.
	tb.AddOwner(99, 1)
	tb.RemoveOwner(99, 1)
	tb.Drop(99)
}

func TestTranslationBufferZeroCapacity(t *testing.T) {
	tb := NewTranslationBuffer(0)
	tb.Record(1, []int{0})
	if tb.Len() != 0 {
		t.Fatal("zero-capacity buffer stored an entry")
	}
	if _, ok := tb.Lookup(1); ok {
		t.Fatal("zero-capacity buffer hit")
	}
}

func TestTranslationBufferEmptyOwnerSetIsInformative(t *testing.T) {
	tb := NewTranslationBuffer(2)
	tb.Record(5, nil)
	owners, ok := tb.Lookup(5)
	if !ok || len(owners) != 0 {
		t.Fatalf("empty-owner entry: owners=%v ok=%v", owners, ok)
	}
}

func TestPropertyTranslationBufferNeverExceedsCapacity(t *testing.T) {
	r := rng.New(31, 2)
	tb := NewTranslationBuffer(8)
	for i := 0; i < 10000; i++ {
		switch r.Intn(3) {
		case 0:
			tb.Record(rngBlock(r), []int{r.Intn(16)})
		case 1:
			tb.Lookup(rngBlock(r))
		case 2:
			tb.Drop(rngBlock(r))
		}
		if tb.Len() > 8 {
			t.Fatalf("buffer grew to %d entries", tb.Len())
		}
	}
}

func rngBlock(r *rng.PCG) addr.Block { return addr.Block(r.Intn(64)) }

func TestDupTagStore(t *testing.T) {
	d := NewDupTagStore(3)
	if d.Caches() != 3 {
		t.Fatalf("Caches = %d", d.Caches())
	}
	d.NoteFill(0, 5)
	d.NoteFill(2, 5)
	h := d.Holders(5)
	if len(h) != 2 || h[0] != 0 || h[1] != 2 {
		t.Fatalf("Holders = %v", h)
	}
	if d.GlobalState(5) != PresentStar {
		t.Fatalf("state = %v", d.GlobalState(5))
	}
	d.NoteEvict(0, 5)
	if d.GlobalState(5) != Present1 {
		t.Fatalf("state after evict = %v", d.GlobalState(5))
	}
	d.NoteModify(2, 5)
	if d.ModifiedBy(5) != 2 || d.GlobalState(5) != PresentM {
		t.Fatalf("modified tracking wrong: by=%d state=%v", d.ModifiedBy(5), d.GlobalState(5))
	}
	d.NoteClean(5)
	if d.ModifiedBy(5) != -1 {
		t.Fatal("NoteClean did not clear")
	}
	d.NoteEvict(2, 5)
	if d.GlobalState(5) != Absent {
		t.Fatalf("state after all evicted = %v", d.GlobalState(5))
	}
}

func TestDupTagEvictClearsModified(t *testing.T) {
	d := NewDupTagStore(2)
	d.NoteModify(1, 9)
	d.NoteEvict(1, 9)
	if d.ModifiedBy(9) != -1 {
		t.Fatal("eviction of modified owner did not clear modifiedBy")
	}
}
