// Package fullmap implements the baseline the paper compares against: the
// full distributed map of Censier & Feautrier (§2.4.2), in which each
// memory block carries an n+1-bit tag — one presence bit per cache plus a
// modified bit. Because the directory knows exactly which caches hold
// copies, every coherence command is directed (PURGE, INV); no broadcasts
// are ever needed.
//
// With Config.LocalExclusive the controller additionally grants the Yen–Fu
// local state (§2.4.3): a read miss on an uncached block returns the copy
// exclusively, and the cache may later modify it without consulting the
// global table. The directory pessimistically marks such blocks modified,
// so a future miss always queries the (possibly still clean) owner — the
// standard resolution of the synchronization problems [10] leaves open.
package fullmap

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/directory"
	"twobit/internal/memory"
	"twobit/internal/msg"
	"twobit/internal/network"
	"twobit/internal/obs"
	"twobit/internal/proto"
	"twobit/internal/sim"
)

// Config configures one full-map memory controller.
type Config struct {
	Module int
	Topo   proto.Topology
	Space  addr.Space
	Lat    proto.Latencies
	Mode   proto.ConcurrencyMode
	// LocalExclusive enables the Yen–Fu §2.4.3 extension.
	LocalExclusive bool
	// Commit is the oracle hook for writes that linearize at the
	// controller (uncached I/O); may be nil.
	Commit proto.CommitFunc
	// Obs is the observability recorder; the full-map controller uses it
	// for transaction-span attribution and, when windows are enabled,
	// the directory-state census gauges (through the two-bit
	// abstraction, so the series align with internal/core's). nil costs
	// nothing.
	Obs *obs.Recorder
}

// Controller is a Censier–Feautrier-style memory controller.
type Controller struct {
	cfg    Config
	kernel *sim.Kernel
	net    network.Network
	mem    *memory.Module
	dir    *directory.FullMap
	ser    *proto.Serializer
	calls  *proto.CallQueue
	stats  proto.CtrlStats

	waiting map[addr.Block]func(cache int, data uint64)
	stashed map[addr.Block][]stashedPut
	// activeSince times each open transaction for occupancy accounting
	// (and records the command it services, for state snapshots).
	activeSince map[addr.Block]txnStart

	sp *obs.SpanRecorder
	// tsCensus is the machine-wide directory-state census, indexed by
	// the two-bit directory.State the exact map projects to; all nil
	// unless windows were enabled on the recorder.
	tsCensus [4]*obs.TimeSeries
}

type txnStart struct {
	at  sim.Time
	cmd msg.Message
}

type stashedPut struct {
	cache int
	data  uint64
}

// New constructs the controller and wires it to the network.
func New(cfg Config, kernel *sim.Kernel, net network.Network, mem *memory.Module) *Controller {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Space.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{
		cfg:         cfg,
		kernel:      kernel,
		net:         net,
		mem:         mem,
		dir:         directory.NewFullMap(cfg.Space.BlocksInModule(cfg.Module), cfg.Topo.Caches),
		waiting:     make(map[addr.Block]func(int, uint64)),
		stashed:     make(map[addr.Block][]stashedPut),
		activeSince: make(map[addr.Block]txnStart),
	}
	c.sp = cfg.Obs.Spans()
	if ts := cfg.Obs.Windows(); ts != nil {
		for s := range c.tsCensus {
			c.tsCensus[s] = ts.Series(obs.DirStateSeriesNames[s], obs.SeriesGauge)
		}
		// Every block this module owns starts Absent.
		c.tsCensus[directory.Absent].GaugeAdd(int64(cfg.Space.BlocksInModule(cfg.Module)))
	}
	c.ser = proto.NewSerializer(cfg.Mode, c.begin)
	c.calls = proto.NewCallQueue(kernel, c.service)
	net.Attach(c.node(), c)
	return c
}

// Reset restores the controller to its freshly-constructed state under
// cfg, keeping the network attachment and the directory/serializer/call
// slab backing storage. Module, Topo and Space are machine shape and must
// match construction. Pooled machines run uninstrumented, so cfg.Obs must
// be nil; instrumented configs rebuild the machine instead.
func (c *Controller) Reset(cfg Config) {
	if cfg.Obs != nil {
		panic("fullmap: Reset with Obs set — rebuild instead")
	}
	if cfg.Module != c.cfg.Module || cfg.Topo != c.cfg.Topo || cfg.Space != c.cfg.Space {
		panic("fullmap: Reset shape differs from construction")
	}
	c.cfg = cfg
	c.dir.Reset()
	c.ser.Reset(cfg.Mode)
	c.calls.Reset()
	c.stats = proto.CtrlStats{}
	clear(c.waiting)
	clear(c.stashed)
	clear(c.activeSince)
}

// CtrlStats implements proto.MemSide.
func (c *Controller) CtrlStats() *proto.CtrlStats { return &c.stats }

// State derives the two-bit abstraction of block b's exact state.
func (c *Controller) State(b addr.Block) directory.State { return c.dir.GlobalState(c.local(b)) }

// Holders returns the exact holder set of block b, for invariants.
func (c *Controller) Holders(b addr.Block) []int { return c.dir.Holders(c.local(b)) }

// Modified reports the m bit of block b, for invariants.
func (c *Controller) Modified(b addr.Block) bool { return c.dir.Modified(c.local(b)) }

// MemVersion returns main memory's stored version of b, for invariants.
func (c *Controller) MemVersion(b addr.Block) uint64 { return c.mem.Read(b) }

// Quiescent reports whether no transaction is active or queued.
func (c *Controller) Quiescent() bool {
	return c.ser.ActiveCount() == 0 && c.ser.QueuedLen() == 0 && len(c.waiting) == 0
}

func (c *Controller) node() network.NodeID                   { return c.cfg.Topo.CtrlNode(c.cfg.Module) }
func (c *Controller) local(b addr.Block) int                 { return int(c.cfg.Space.LocalIndex(b)) }
func (c *Controller) send(dst network.NodeID, m msg.Message) { c.net.Send(c.node(), dst, m) }

// censusPre samples block li's two-bit state before a directory
// mutation; censusMoved, called after, moves the block between the
// census gauges if the projected state changed. The pair brackets each
// mutation cluster because the exact map has no single transition
// choke point the way core's setState is.
func (c *Controller) censusPre(li int) directory.State {
	if c.tsCensus[directory.Absent] == nil {
		return directory.Absent
	}
	return c.dir.GlobalState(li)
}

func (c *Controller) censusMoved(li int, old directory.State) {
	if c.tsCensus[directory.Absent] == nil {
		return
	}
	if s := c.dir.GlobalState(li); s != old {
		c.tsCensus[old].GaugeAdd(-1)
		c.tsCensus[s].GaugeAdd(1)
	}
}

// Deliver implements network.Handler.
func (c *Controller) Deliver(src network.NodeID, m msg.Message) {
	if m.Kind == msg.KindRequest || m.Kind == msg.KindMRequest {
		// The requester's span: its REQUEST/MREQUEST transit ends here.
		c.sp.Mark(m.Cache, obs.PhaseReqTransit)
	}
	switch m.Kind {
	case msg.KindRequest, msg.KindEject, msg.KindMRequest,
		msg.KindUncachedRead, msg.KindUncachedWrite:
		c.ser.Submit(proto.Pending{Src: src, M: m})
		c.stats.NoteQueue(c.ser.QueuedLen())
	case msg.KindPut:
		c.handlePut(m)
	case msg.KindMAck:
		// The shared cache agent acknowledges every positive grant; the
		// full map's grants are provably safe (a set presence bit means no
		// INV can be in flight), so the confirmation carries no news.
	default:
		panic(fmt.Sprintf("fullmap: controller %d: unexpected %v", c.cfg.Module, m))
	}
}

func (c *Controller) handlePut(m msg.Message) {
	if onData := c.waiting[m.Block]; onData != nil {
		delete(c.waiting, m.Block)
		removed := c.ser.DeleteQueued(m.Block, func(p proto.Pending) bool {
			return p.M.Kind == msg.KindEject && p.M.RW == msg.Write && p.M.Cache == m.Cache
		})
		if removed > 0 {
			// The data came from a racing eviction, not a PURGE answer:
			// the sender's copy is gone, so its presence bit clears here
			// (the deleted EJECT would have done it).
			li := c.local(m.Block)
			pre := c.censusPre(li)
			c.dir.SetPresent(li, m.Cache, false)
			c.censusMoved(li, pre)
		}
		onData(m.Cache, m.Data)
		return
	}
	c.stashed[m.Block] = append(c.stashed[m.Block], stashedPut{cache: m.Cache, data: m.Data})
}

func (c *Controller) begin(p proto.Pending) {
	c.activeSince[p.M.Block] = txnStart{at: c.kernel.Now(), cmd: p.M}
	c.calls.Service(c.cfg.Lat.CtrlService, p)
}

func (c *Controller) service(p proto.Pending) {
	switch p.M.Kind {
	case msg.KindRequest:
		c.stats.Requests.Inc()
		c.sp.Mark(p.M.Cache, obs.PhaseQueue)
		if p.M.RW == msg.Read {
			c.readMiss(p)
		} else {
			c.writeMiss(p)
		}
	case msg.KindMRequest:
		c.sp.Mark(p.M.Cache, obs.PhaseQueue)
		c.mrequest(p)
	case msg.KindEject:
		c.eject(p)
	case msg.KindUncachedRead:
		c.dmaRead(p)
	case msg.KindUncachedWrite:
		c.dmaWrite(p)
	default:
		panic(fmt.Sprintf("fullmap: controller %d: cannot service %v", c.cfg.Module, p.M))
	}
}

// dmaRead services an uncached I/O read with exact knowledge: a modified
// block is purged from its owner (who keeps a clean copy); otherwise
// memory is current.
func (c *Controller) dmaRead(p proto.Pending) {
	c.stats.DMAReads.Inc()
	a := p.M.Block
	li := c.local(a)
	reply := func(data uint64) {
		c.send(p.Src, msg.Message{Kind: msg.KindGet, Block: a, Cache: p.M.Cache, Data: data})
	}
	if c.dir.Modified(li) {
		owner := c.modifiedOwner(a)
		c.purge(a, msg.Read, owner, func(_ int, data uint64) {
			c.kernel.After(c.cfg.Lat.Memory, func() {
				c.mem.Write(a, data)
				pre := c.censusPre(li)
				c.dir.SetModified(li, false)
				c.censusMoved(li, pre)
				reply(data)
				c.done(a)
			})
		})
		return
	}
	c.kernel.After(c.cfg.Lat.Memory, func() {
		reply(c.mem.Read(a))
		c.done(a)
	})
}

// dmaWrite services an uncached I/O write of a whole block: the owner (if
// modified) is drained and discarded, every holder is invalidated by a
// directed INV, and the write linearizes at the memory update.
func (c *Controller) dmaWrite(p proto.Pending) {
	c.stats.DMAWrites.Inc()
	a := p.M.Block
	li := c.local(a)
	version := p.M.Data
	finish := func() {
		c.kernel.After(c.cfg.Lat.Memory, func() {
			c.mem.Write(a, version)
			if c.cfg.Commit != nil {
				c.cfg.Commit(a, version)
			}
			c.send(p.Src, msg.Message{Kind: msg.KindGet, Block: a, Cache: p.M.Cache, Data: version})
			pre := c.censusPre(li)
			c.dir.Clear(li)
			c.censusMoved(li, pre)
			c.done(a)
		})
	}
	if c.dir.Modified(li) {
		owner := c.modifiedOwner(a)
		c.purge(a, msg.Write, owner, func(int, uint64) { finish() })
		return
	}
	c.invalidateHolders(a, -1)
	finish()
}

func (c *Controller) sendGet(k int, a addr.Block, data uint64, exclusive bool) {
	c.send(c.cfg.Topo.CacheNode(k), msg.Message{
		Kind: msg.KindGet, Block: a, Cache: k, Data: data, Ok: exclusive,
	})
}

// modifiedOwner returns the single holder of a modified block.
func (c *Controller) modifiedOwner(a addr.Block) int {
	h := c.dir.Holders(c.local(a))
	if len(h) != 1 {
		panic(fmt.Sprintf("fullmap: modified %v has %d holders", a, len(h)))
	}
	return h[0]
}

// readMiss services REQUEST(k,a,"read") with exact knowledge.
func (c *Controller) readMiss(p proto.Pending) {
	c.stats.ReadMisses.Inc()
	k, a := p.M.Cache, p.M.Block
	li := c.local(a)
	if c.dir.Modified(li) {
		owner := c.modifiedOwner(a)
		c.purge(a, msg.Read, owner, func(_ int, data uint64) {
			c.sp.Mark(k, obs.PhaseWriteback)
			c.kernel.After(c.cfg.Lat.Memory, func() {
				c.sp.Mark(k, obs.PhaseMemory)
				c.mem.Write(a, data)
				c.sendGet(k, a, data, false)
				pre := c.censusPre(li)
				c.dir.SetModified(li, false)
				// The previous owner's presence bit is already accurate:
				// either it answered the PURGE and kept a clean copy (bit
				// stays set), or the data arrived via a racing eviction and
				// the put-consumption path cleared the bit.
				c.dir.SetPresent(li, k, true)
				c.censusMoved(li, pre)
				c.done(a)
			})
		})
		return
	}
	exclusive := c.cfg.LocalExclusive && c.dir.HolderCount(li) == 0
	c.kernel.After(c.cfg.Lat.Memory, func() {
		c.sp.Mark(k, obs.PhaseMemory)
		data := c.mem.Read(a)
		c.sendGet(k, a, data, exclusive)
		pre := c.censusPre(li)
		c.dir.SetPresent(li, k, true)
		if exclusive {
			// Pessimistic m bit: the owner may modify silently (§2.4.3).
			c.dir.SetModified(li, true)
		}
		c.censusMoved(li, pre)
		c.done(a)
	})
}

// writeMiss services REQUEST(k,a,"write") with exact knowledge.
func (c *Controller) writeMiss(p proto.Pending) {
	c.stats.WriteMisses.Inc()
	k, a := p.M.Cache, p.M.Block
	li := c.local(a)
	finish := func(data uint64) {
		c.sendGet(k, a, data, false)
		pre := c.censusPre(li)
		c.dir.Clear(li)
		c.dir.SetPresent(li, k, true)
		c.dir.SetModified(li, true)
		c.censusMoved(li, pre)
		c.done(a)
	}
	if c.dir.Modified(li) {
		owner := c.modifiedOwner(a)
		c.purge(a, msg.Write, owner, func(_ int, data uint64) {
			c.sp.Mark(k, obs.PhaseWriteback)
			c.kernel.After(c.cfg.Lat.Memory, func() {
				c.sp.Mark(k, obs.PhaseMemory)
				c.mem.Write(a, data)
				finish(data)
			})
		})
		return
	}
	// Directed invalidations to the exact holders (no broadcast, ever).
	c.invalidateHolders(a, k)
	c.kernel.After(c.cfg.Lat.Memory, func() {
		c.sp.Mark(k, obs.PhaseMemory)
		finish(c.mem.Read(a))
	})
}

// mrequest services the §3.2.4 equivalent. The exact map makes the grant
// decision trivially safe: the presence bit for k is cleared the moment an
// INV is sent, so "bit set" means no invalidation can be in flight.
func (c *Controller) mrequest(p proto.Pending) {
	c.stats.MRequests.Inc()
	k, a := p.M.Cache, p.M.Block
	li := c.local(a)
	if !c.dir.Present(li, k) || c.dir.Modified(li) {
		c.stats.MGrantDenied.Inc()
		c.send(c.cfg.Topo.CacheNode(k), msg.Message{
			Kind: msg.KindMGranted, Block: a, Cache: k, Ok: false,
		})
		c.done(a)
		return
	}
	c.invalidateHolders(a, k)
	c.send(c.cfg.Topo.CacheNode(k), msg.Message{
		Kind: msg.KindMGranted, Block: a, Cache: k, Ok: true,
	})
	pre := c.censusPre(li)
	c.dir.SetModified(li, true)
	c.censusMoved(li, pre)
	c.done(a)
}

// eject services §3.2.1 with exact bookkeeping.
func (c *Controller) eject(p proto.Pending) {
	c.stats.Ejects.Inc()
	k, a := p.M.Cache, p.M.Block
	li := c.local(a)
	if p.M.RW == msg.Read {
		pre := c.censusPre(li)
		c.dir.SetPresent(li, k, false)
		// A clean ejection by a Yen–Fu exclusive owner leaves the
		// pessimistic m bit dangling; clear it when no holders remain.
		if c.dir.HolderCount(li) == 0 {
			c.dir.SetModified(li, false)
		}
		c.censusMoved(li, pre)
		c.done(a)
		return
	}
	c.await(a, func(_ int, data uint64) {
		c.kernel.After(c.cfg.Lat.Memory, func() {
			c.mem.Write(a, data)
			pre := c.censusPre(li)
			c.dir.SetPresent(li, k, false)
			if c.dir.HolderCount(li) == 0 {
				c.dir.SetModified(li, false)
			}
			c.censusMoved(li, pre)
			c.done(a)
		})
	})
}

// invalidateHolders sends directed INVs to every holder except k, clearing
// their presence bits, and deletes their queued MREQUESTs (§3.2.5 applies
// to the full map too).
func (c *Controller) invalidateHolders(a addr.Block, k int) {
	li := c.local(a)
	pre := c.censusPre(li)
	for _, h := range c.dir.Holders(li) {
		if h == k {
			continue
		}
		c.stats.DirectedSends.Inc()
		c.send(c.cfg.Topo.CacheNode(h), msg.Message{Kind: msg.KindInv, Block: a, Cache: h})
		c.dir.SetPresent(li, h, false)
	}
	c.censusMoved(li, pre)
	if n := c.ser.DeleteQueued(a, func(p proto.Pending) bool {
		return p.M.Kind == msg.KindMRequest && p.M.Cache != k
	}); n > 0 {
		c.stats.DeletedMRequests.Add(uint64(n))
	}
}

// purge sends the directed PURGE(a,owner,rw) and registers the data
// continuation (which may be satisfied by a racing eviction's put).
func (c *Controller) purge(a addr.Block, rw msg.RW, owner int, onData func(int, uint64)) {
	if puts := c.stashed[a]; len(puts) > 0 {
		put := puts[0]
		if len(puts) == 1 {
			delete(c.stashed, a)
		} else {
			c.stashed[a] = puts[1:]
		}
		c.ser.DeleteQueued(a, func(p proto.Pending) bool {
			return p.M.Kind == msg.KindEject && p.M.RW == msg.Write && p.M.Cache == put.cache
		})
		// The eviction's write-back subsumed the purge: the owner's copy is
		// gone, so clear its presence bit here.
		li := c.local(a)
		pre := c.censusPre(li)
		c.dir.SetPresent(li, put.cache, false)
		c.censusMoved(li, pre)
		c.calls.Data(0, onData, put.cache, put.data)
		return
	}
	c.stats.DirectedSends.Inc()
	c.send(c.cfg.Topo.CacheNode(owner), msg.Message{Kind: msg.KindPurge, Block: a, Cache: owner, RW: rw})
	c.await(a, onData)
}

func (c *Controller) await(a addr.Block, onData func(int, uint64)) {
	if puts := c.stashed[a]; len(puts) > 0 {
		put := puts[0]
		if len(puts) == 1 {
			delete(c.stashed, a)
		} else {
			c.stashed[a] = puts[1:]
		}
		c.calls.Data(0, onData, put.cache, put.data)
		return
	}
	if _, dup := c.waiting[a]; dup {
		panic(fmt.Sprintf("fullmap: controller %d: two waiters for %v", c.cfg.Module, a))
	}
	c.waiting[a] = onData
}

func (c *Controller) done(a addr.Block) {
	if since, ok := c.activeSince[a]; ok {
		c.stats.BusyCycles.Add(uint64(c.kernel.Now() - since.at))
		delete(c.activeSince, a)
	}
	c.ser.Done(a)
}

// BlockSnapshot is the full-map analogue of core.BlockSnapshot: the
// controller's observable state for one block, for model-checker
// fingerprints. Holders is the exact presence-bit set.
type BlockSnapshot struct {
	Holders   []int
	Modified  bool
	Mem       uint64
	Active    bool
	ActiveCmd msg.Message
	Waiting   bool
	Stashed   []StashedPut
	Queued    []msg.Message
}

// StashedPut is one buffered early put.
type StashedPut struct {
	Cache int
	Data  uint64
}

// BlockSnapshot returns the observable controller state for block b.
func (c *Controller) BlockSnapshot(b addr.Block) BlockSnapshot {
	s := BlockSnapshot{
		Holders:  c.Holders(b),
		Modified: c.Modified(b),
		Mem:      c.mem.Read(b),
	}
	if start, ok := c.activeSince[b]; ok {
		s.Active = true
		s.ActiveCmd = start.cmd
	}
	_, s.Waiting = c.waiting[b]
	for _, p := range c.stashed[b] {
		s.Stashed = append(s.Stashed, StashedPut{Cache: p.cache, Data: p.data})
	}
	for _, p := range c.ser.QueuedFor(b) {
		s.Queued = append(s.Queued, p.M)
	}
	return s
}
