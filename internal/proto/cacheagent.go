package proto

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/cache"
	"twobit/internal/msg"
	"twobit/internal/network"
	"twobit/internal/obs"
	"twobit/internal/sim"
)

// Static span names: the reference span opens at Access and closes at
// completion, so the hot path must not build strings.
const (
	refReadName  = "ref read"
	refWriteName = "ref write"
)

func refName(write bool) string {
	if write {
		return refWriteName
	}
	return refReadName
}

// AgentConfig configures a CacheAgent.
type AgentConfig struct {
	Index int      // k: this cache's index
	Topo  Topology // node layout
	Lat   Latencies
	// DisableCleanEject drops EJECT(k,olda,"read") entirely — the paper
	// notes the protocols remain correct without it, at the cost of more
	// broadcasts (Present1 blocks can no longer return to Absent).
	DisableCleanEject bool
	// ExclusiveGrants enables the Yen–Fu local state (§2.4.3): a get whose
	// Ok flag is set confers exclusivity, and a write hit on an Exclusive
	// frame upgrades to Modified silently, with no MREQUEST.
	ExclusiveGrants bool
	// Commit is the oracle hook; may be nil.
	Commit CommitFunc
	// Obs is the observability recorder; nil leaves the agent
	// uninstrumented at zero cost.
	Obs *obs.Recorder
}

// CacheAgent is the cache-side coherence logic shared by the directory
// protocols (two-bit and full map). It implements the P_i–C_i column of
// Table 3-1: it issues REQUEST/MREQUEST/EJECT and the put data transfer,
// and it reacts to BROADINV/INV, BROADQUERY/PURGE, MGRANTED and get. The
// protocols differ only at the controller; the paper makes the same
// observation when it notes that cache-side invalidation logic matches the
// classical solution's.
type CacheAgent struct {
	cfg    AgentConfig
	kernel *sim.Kernel
	net    network.Network
	store  *cache.Cache
	stats  CacheSideStats

	// pend is the in-flight processor reference; a value field (guarded
	// by pendActive) so issuing a reference allocates nothing.
	pend       pendingRef
	pendActive bool

	// Deferred completion scheduled through the kernel's pooled event
	// form (see complete). At most one reference is outstanding per
	// agent, so one slot suffices and the hot path never allocates a
	// closure per completion.
	compDone  func(uint64)
	compBlock int64

	rec       *obs.Recorder
	comp      obs.Component  // "cache<k>" trace track
	obsRefs   *obs.Counter   // "cache<k>/refs"
	obsRemote *obs.Histogram // "cache<k>/remote_ref_cycles": issue → finish
	sp        *obs.SpanRecorder

	// Machine-wide windowed rates (every agent folds into the same
	// "sys/*" series) and the per-address contention profiler; all nil
	// unless windows/contention were enabled on the recorder.
	tsRefs     *obs.TimeSeries // "sys/refs"
	tsMisses   *obs.TimeSeries // "sys/misses"
	tsInvs     *obs.TimeSeries // "sys/invalidations"
	tsUpgrades *obs.TimeSeries // "sys/upgrades"
	cont       *obs.ContentionRecorder
}

type pendPhase uint8

const (
	pendAwaitMGrant pendPhase = iota // MREQUEST outstanding
	pendAwaitGet                     // REQUEST outstanding
)

type pendingRef struct {
	ref          addr.Ref
	writeVersion uint64
	done         func(uint64)
	phase        pendPhase
	issuedAt     sim.Time // when the remote transaction was issued
}

// NewCacheAgent wires a cache agent to the network. store must be a
// freshly constructed cache dedicated to this agent.
func NewCacheAgent(cfg AgentConfig, kernel *sim.Kernel, net network.Network, store *cache.Cache) *CacheAgent {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Topo.Caches {
		panic(fmt.Sprintf("proto: agent index %d outside [0,%d)", cfg.Index, cfg.Topo.Caches))
	}
	a := &CacheAgent{cfg: cfg, kernel: kernel, net: net, store: store, comp: obs.NoComponent}
	if cfg.Obs != nil {
		a.rec = cfg.Obs
		a.comp = cfg.Obs.Component(fmt.Sprintf("cache%d", cfg.Index))
		a.obsRefs = cfg.Obs.Counter(fmt.Sprintf("cache%d/refs", cfg.Index))
		a.obsRemote = cfg.Obs.Histogram(fmt.Sprintf("cache%d/remote_ref_cycles", cfg.Index), 4)
		if ts := cfg.Obs.Windows(); ts != nil {
			a.tsRefs = ts.Series("sys/refs", obs.SeriesSum)
			a.tsMisses = ts.Series("sys/misses", obs.SeriesSum)
			a.tsInvs = ts.Series("sys/invalidations", obs.SeriesSum)
			a.tsUpgrades = ts.Series("sys/upgrades", obs.SeriesSum)
		}
		a.cont = cfg.Obs.Contention()
	}
	a.sp = cfg.Obs.Spans()
	net.Attach(cfg.Topo.CacheNode(cfg.Index), a)
	return a
}

// Reset restores the agent to its freshly-constructed state under cfg,
// keeping the network attachment (Index and Topo are machine shape and
// must match construction). Pooled machines run uninstrumented, so
// cfg.Obs must be nil; instrumented configs rebuild the machine instead.
// The cache store is reset separately by its owner.
func (a *CacheAgent) Reset(cfg AgentConfig) {
	if cfg.Obs != nil {
		panic("proto: CacheAgent.Reset with Obs set — rebuild instead")
	}
	if cfg.Index != a.cfg.Index || cfg.Topo != a.cfg.Topo {
		panic(fmt.Sprintf("proto: CacheAgent.Reset shape (%d,%+v) differs from construction (%d,%+v)",
			cfg.Index, cfg.Topo, a.cfg.Index, a.cfg.Topo))
	}
	a.cfg = cfg
	a.stats = CacheSideStats{}
	a.pend = pendingRef{}
	a.pendActive = false
	a.compDone = nil
	a.compBlock = 0
}

// Store implements CacheSide.
func (a *CacheAgent) Store() *cache.Cache { return a.store }

// SideStats implements CacheSide.
func (a *CacheAgent) SideStats() *CacheSideStats { return &a.stats }

// Busy reports whether a processor reference is outstanding.
func (a *CacheAgent) Busy() bool { return a.pendActive }

func (a *CacheAgent) node() network.NodeID { return a.cfg.Topo.CacheNode(a.cfg.Index) }

func (a *CacheAgent) send(dst network.NodeID, m msg.Message) {
	a.net.Send(a.node(), dst, m)
}

func (a *CacheAgent) commit(b addr.Block, v uint64) {
	if a.cfg.Commit != nil {
		a.cfg.Commit(b, v)
	}
}

// Access implements CacheSide. It panics if a reference is already
// outstanding: the simulated processors block on memory accesses, and an
// overlap always indicates a harness bug.
func (a *CacheAgent) Access(ref addr.Ref, writeVersion uint64, done func(uint64)) {
	if a.pendActive {
		panic(fmt.Sprintf("proto: cache %d: overlapping references", a.cfg.Index))
	}
	if done == nil {
		panic("proto: nil done callback")
	}
	a.stats.References.Inc()
	if ref.Write {
		a.stats.Writes.Inc()
	} else {
		a.stats.Reads.Inc()
	}
	a.obsRefs.Inc()
	a.tsRefs.Inc()
	a.cont.Ref(uint64(ref.Block))
	if ref.Write {
		a.cont.Write(uint64(ref.Block), ref.Disp, a.cfg.Index)
	}
	a.rec.Begin(a.comp, refName(ref.Write), int64(ref.Block))

	f := a.store.Access(ref.Block)
	if a.sp != nil {
		a.sp.Start(a.cfg.Index, spanClass(ref, f, a.cfg.ExclusiveGrants), int64(ref.Block))
	}
	if f != nil {
		a.hit(ref, f, writeVersion, done)
		return
	}
	a.tsMisses.Inc()
	a.miss(ref, writeVersion, done)
}

// spanClass classifies a reference for latency attribution exactly the
// way hit and miss will dispatch it: the class is decided at issue time
// and survives §3.2.5 conversions (a converted MREQUEST stays a
// write_upgrade — its retry latency belongs to that class, matching the
// paper's T_WH accounting).
func spanClass(ref addr.Ref, f *cache.Frame, exclusiveGrants bool) obs.RefClass {
	switch {
	case !ref.Write && f != nil:
		return obs.ClassReadHit
	case !ref.Write:
		return obs.ClassReadMiss
	case f == nil:
		return obs.ClassWriteMiss
	case f.Modified || (exclusiveGrants && f.Exclusive):
		return obs.ClassWriteHit
	default:
		return obs.ClassWriteUpgrade
	}
}

// complete closes the reference span and runs done after the fill/hit
// latency — the single completion path all references share, so every
// Begin emitted by Access is closed by exactly one End. The deferral
// rides the kernel's pooled event form: the processor blocks until done
// runs, so one completion slot per agent is enough and no closure is
// allocated.
func (a *CacheAgent) complete(ref addr.Ref, v uint64, done func(uint64)) {
	if a.compDone != nil {
		panic(fmt.Sprintf("proto: cache %d: overlapping completions", a.cfg.Index))
	}
	a.compDone = done
	a.compBlock = int64(ref.Block)
	var w uint64
	if ref.Write {
		w = 1
	}
	a.kernel.AfterCall(a.cfg.Lat.CacheHit, a, v, w)
}

// Call implements sim.Caller: it runs the deferred completion scheduled
// by complete. a0 carries the value returned to the processor; a1 is 1
// for a write reference (it selects the span name).
func (a *CacheAgent) Call(a0, a1 uint64) {
	done := a.compDone
	a.compDone = nil
	a.rec.End(a.comp, refName(a1 == 1), a.compBlock)
	a.sp.Finish(a.cfg.Index)
	done(a0)
}

// hit handles the two purely local cases (read hit; write hit on modified)
// plus the MREQUEST and Yen–Fu exclusive-upgrade paths.
func (a *CacheAgent) hit(ref addr.Ref, f *cache.Frame, writeVersion uint64, done func(uint64)) {
	if !ref.Write {
		a.complete(ref, f.Data, done)
		return
	}
	if f.Modified {
		f.Data = writeVersion
		a.commit(ref.Block, writeVersion)
		a.complete(ref, writeVersion, done)
		return
	}
	if a.cfg.ExclusiveGrants && f.Exclusive {
		f.Modified = true
		f.Data = writeVersion
		a.stats.ExclusiveWrites.Inc()
		a.commit(ref.Block, writeVersion)
		a.complete(ref, writeVersion, done)
		return
	}
	// §3.2.4: write hit on previously unmodified block — MREQUEST.
	a.pend = pendingRef{ref: ref, writeVersion: writeVersion, done: done, phase: pendAwaitMGrant, issuedAt: a.kernel.Now()}
	a.pendActive = true
	a.stats.MRequestsSent.Inc()
	a.tsUpgrades.Inc()
	a.send(a.cfg.Topo.CtrlFor(ref.Block), msg.Message{
		Kind: msg.KindMRequest, Block: ref.Block, Cache: a.cfg.Index,
	})
}

// miss performs §3.2.1 replacement, then issues the REQUEST.
func (a *CacheAgent) miss(ref addr.Ref, writeVersion uint64, done func(uint64)) {
	a.evictFor(ref.Block)
	rw := msg.Read
	if ref.Write {
		rw = msg.Write
	}
	a.pend = pendingRef{ref: ref, writeVersion: writeVersion, done: done, phase: pendAwaitGet, issuedAt: a.kernel.Now()}
	a.pendActive = true
	a.send(a.cfg.Topo.CtrlFor(ref.Block), msg.Message{
		Kind: msg.KindRequest, Block: ref.Block, Cache: a.cfg.Index, RW: rw,
	})
}

// evictFor frees a frame for block b, running the §3.2.1 replacement
// protocol on the victim if one must be displaced.
func (a *CacheAgent) evictFor(b addr.Block) {
	victim := a.store.Victim(b)
	if !victim.Valid {
		return
	}
	a.sp.Mark(a.cfg.Index, obs.PhaseReplacement)
	olda := victim.Block
	ctrl := a.cfg.Topo.CtrlFor(olda)
	if victim.Modified || victim.Exclusive {
		// Case 3: EJECT(k,olda,"write") followed by put(b_k,olda).
		// An Exclusive (Yen–Fu) frame takes this path even when clean: the
		// directory pessimistically believes it modified, and a silent
		// drop would leave a directed PURGE with no one to answer it.
		a.stats.EvictionsDirty.Inc()
		data := victim.Data
		a.send(ctrl, msg.Message{Kind: msg.KindEject, Block: olda, Cache: a.cfg.Index, RW: msg.Write})
		a.send(ctrl, msg.Message{Kind: msg.KindPut, Block: olda, Cache: a.cfg.Index, Data: data})
	} else {
		// Case 2: EJECT(k,olda,"read"), optional per the paper's note.
		a.stats.EvictionsClean.Inc()
		if !a.cfg.DisableCleanEject {
			a.send(ctrl, msg.Message{Kind: msg.KindEject, Block: olda, Cache: a.cfg.Index, RW: msg.Read})
		}
	}
	a.store.Evict(victim)
}

// Deliver implements network.Handler: reactions to controller commands.
func (a *CacheAgent) Deliver(src network.NodeID, m msg.Message) {
	switch m.Kind {
	case msg.KindBroadInv, msg.KindInv:
		a.handleInvalidate(m)
	case msg.KindBroadQuery, msg.KindPurge:
		a.handleQuery(src, m)
	case msg.KindMGranted:
		a.handleMGranted(m)
	case msg.KindGet:
		a.handleGet(m)
	default:
		panic(fmt.Sprintf("proto: cache %d: unexpected %v", a.cfg.Index, m))
	}
}

func (a *CacheAgent) handleInvalidate(m msg.Message) {
	a.stats.CommandsReceived.Inc()
	if m.Kind == msg.KindBroadInv && m.Cache == a.cfg.Index {
		// The exempted cache k; the network normally excludes us, so this
		// is defensive (and free of side effects, per §3.2.4's rationale
		// for the parameter k).
		return
	}
	if f := a.store.Snoop(m.Block); f != nil {
		a.store.Invalidate(m.Block)
		a.stats.InvalidationsApplied.Inc()
		a.tsInvs.Inc()
		a.cont.Invalidation(uint64(m.Block))
		a.rec.Emit(a.comp, "inv applied", int64(m.Block), 0)
	} else {
		a.stats.UselessCommands.Inc()
	}
	// §3.2.5: a BROADINV overtaking our MREQUEST acts as MGRANTED(·,false).
	if a.pendActive && a.pend.phase == pendAwaitMGrant && a.pend.ref.Block == m.Block {
		a.stats.MRequestsConverted.Inc()
		a.rec.Emit(a.comp, "mreq converted", int64(m.Block), 0)
		// The BROADINV stands in for MGRANTED(·,false): the grant wait
		// ends here, like on the explicit denial path.
		a.sp.Mark(a.cfg.Index, obs.PhaseDataReturn)
		a.reissueAsWriteMiss()
	}
}

func (a *CacheAgent) handleQuery(src network.NodeID, m msg.Message) {
	a.stats.CommandsReceived.Inc()
	f := a.store.Snoop(m.Block)
	if f == nil {
		a.stats.UselessCommands.Inc()
		return
	}
	// Only the cache holding the block modified (or exclusively, under
	// Yen–Fu grants, since the directory may believe it modified) responds.
	if !f.Modified && !f.Exclusive {
		return
	}
	a.stats.QueriesAnswered.Inc()
	a.rec.Emit(a.comp, "query answered", int64(m.Block), 0)
	a.send(src, msg.Message{Kind: msg.KindPut, Block: m.Block, Cache: a.cfg.Index, Data: f.Data})
	if m.RW == msg.Read {
		// §3.2.2 case 2: reset the modified bit, keep the (now clean) copy.
		f.Modified = false
		f.Exclusive = false
	} else {
		// §3.2.3 case 3: reset the valid bit instead.
		a.store.Invalidate(m.Block)
	}
}

func (a *CacheAgent) handleMGranted(m msg.Message) {
	if !a.pendActive || a.pend.phase != pendAwaitMGrant || a.pend.ref.Block != m.Block {
		// Spurious: we already converted on a BROADINV (§3.2.5) or the
		// denial crossed our retry. The conversion path has taken over; a
		// positive grant must be refused so the controller does not record
		// a phantom owner.
		if m.Ok {
			a.sendMAck(m.Block, false)
		}
		return
	}
	a.sp.Mark(a.cfg.Index, obs.PhaseDataReturn)
	if !m.Ok {
		a.stats.Retries.Inc()
		a.rec.Emit(a.comp, "retry", int64(m.Block), 0)
		a.reissueAsWriteMiss()
		return
	}
	f := a.store.Lookup(m.Block)
	if f == nil {
		// Copy vanished without a BROADINV reaching us first; refuse the
		// grant and retry as a write miss. (Cannot occur under per-pair
		// FIFO delivery, kept as a defensive path.)
		a.sendMAck(m.Block, false)
		a.stats.Retries.Inc()
		a.reissueAsWriteMiss()
		return
	}
	f.Modified = true
	f.Data = a.pend.writeVersion
	a.commit(m.Block, a.pend.writeVersion)
	a.sendMAck(m.Block, true)
	a.finish(a.pend.writeVersion)
}

// sendMAck confirms (or refuses) an MGRANTED(k,true): the two-bit
// controller commits the PresentM transition only on a positive
// acknowledgement, which closes the phantom-owner race (an MREQUEST whose
// sender was invalidated after the §3.2.5 queue deletion ran).
func (a *CacheAgent) sendMAck(b addr.Block, ok bool) {
	a.send(a.cfg.Topo.CtrlFor(b), msg.Message{
		Kind: msg.KindMAck, Block: b, Cache: a.cfg.Index, Ok: ok,
	})
}

// reissueAsWriteMiss converts a pending MREQUEST into a write REQUEST
// (processor j's "next action" in the §3.2.5 scenario). Any local copy is
// dropped first: on the denial path the invalidation may not have reached
// us yet, and keeping the doomed copy while refilling would leave a stale
// duplicate frame behind.
func (a *CacheAgent) reissueAsWriteMiss() {
	a.store.Invalidate(a.pend.ref.Block)
	a.pend.phase = pendAwaitGet
	a.send(a.cfg.Topo.CtrlFor(a.pend.ref.Block), msg.Message{
		Kind: msg.KindRequest, Block: a.pend.ref.Block, Cache: a.cfg.Index, RW: msg.Write,
	})
}

func (a *CacheAgent) handleGet(m msg.Message) {
	if !a.pendActive || a.pend.phase != pendAwaitGet || a.pend.ref.Block != m.Block {
		panic(fmt.Sprintf("proto: cache %d: unsolicited %v", a.cfg.Index, m))
	}
	a.sp.Mark(a.cfg.Index, obs.PhaseDataReturn)
	// The frame freed at miss time is still free (only gets fill frames,
	// and we have at most one outstanding reference), but run the
	// replacement defensively in case a conflicting block was filled.
	a.evictFor(m.Block)
	victim := a.store.Victim(m.Block)
	a.store.Fill(victim, m.Block, m.Data)
	f := a.store.Lookup(m.Block)
	if a.cfg.ExclusiveGrants && m.Ok && !a.pend.ref.Write {
		f.Exclusive = true
	}
	if a.pend.ref.Write {
		f.Modified = true
		f.Data = a.pend.writeVersion
		a.commit(m.Block, a.pend.writeVersion)
		a.finish(a.pend.writeVersion)
		return
	}
	a.finish(m.Data)
}

// finish completes the outstanding reference after the fill latency.
func (a *CacheAgent) finish(v uint64) {
	a.obsRemote.Observe(uint64(a.kernel.Now() - a.pend.issuedAt))
	ref, done := a.pend.ref, a.pend.done
	a.pend = pendingRef{}
	a.pendActive = false
	a.complete(ref, v, done)
}
