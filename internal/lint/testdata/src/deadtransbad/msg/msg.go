// Package msg is a miniature message vocabulary for the dead-transition
// fixtures: a kind enum, a message struct, a topology with the
// destination constructors the analyzer recognizes, and a network.
package msg

// Kind identifies a command.
type Kind uint8

// The command kinds.
const (
	KindInvalid Kind = iota
	KindPing
	KindPong
	KindDrain
)

// Message is one network command.
type Message struct {
	Kind Kind
	Data int
}

// Topo maps components to node ids.
type Topo struct{ Caches int }

// CacheNode returns cache k's node id.
func (t Topo) CacheNode(k int) int { return k }

// CtrlFor returns the controller node for block b.
func (t Topo) CtrlFor(b int) int { return t.Caches }

// Net delivers messages.
type Net interface {
	Send(src, dst int, m Message)
	Broadcast(src int, m Message)
}
