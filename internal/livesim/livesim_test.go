package livesim

import (
	"sync/atomic"
	"testing"

	"twobit/internal/addr"
	"twobit/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Procs: 2, Modules: 1, CacheBlocks: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Procs: 0, Modules: 1, CacheBlocks: 4}).Validate(); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted zero config")
	}
}

// TestRandomSharingCoherent runs a heavily shared random workload on real
// goroutines; the oracle and quiescent invariants must hold. Run with
// -race to validate the synchronization structure.
func TestRandomSharingCoherent(t *testing.T) {
	m, err := New(Config{Procs: 8, Modules: 2, CacheBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(func(proc int, access func(addr.Ref) uint64) {
		r := rng.New(99, uint64(proc)+1)
		for i := 0; i < 2000; i++ {
			ref := addr.Ref{
				Block: addr.Block(r.Intn(12)),
				Write: r.Bool(0.4),
			}
			access(ref)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMRequestStorm hammers the §3.2.5 scenario: every processor
// read-then-writes the same single block, maximizing racing MREQUESTs.
func TestMRequestStorm(t *testing.T) {
	m, err := New(Config{Procs: 8, Modules: 1, CacheBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(func(proc int, access func(addr.Ref) uint64) {
		for i := 0; i < 1000; i++ {
			access(addr.Ref{Block: 1})              // read: load the block
			access(addr.Ref{Block: 1, Write: true}) // write hit → MREQUEST
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionChurn forces continuous replacement (tiny caches, many
// blocks) so EJECT/BROADQUERY races get exercised.
func TestEvictionChurn(t *testing.T) {
	m, err := New(Config{Procs: 4, Modules: 2, CacheBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(func(proc int, access func(addr.Ref) uint64) {
		r := rng.New(7, uint64(proc)+10)
		for i := 0; i < 2000; i++ {
			access(addr.Ref{Block: addr.Block(r.Intn(16)), Write: r.Bool(0.5)})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReadsObserveWrites checks end-to-end dataflow: a producer writes
// increasing versions; consumers must observe a non-decreasing sequence.
func TestReadsObserveWrites(t *testing.T) {
	m, err := New(Config{Procs: 4, Modules: 1, CacheBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	var maxSeen [4]uint64
	err = m.Run(func(proc int, access func(addr.Ref) uint64) {
		if proc == 0 {
			for i := 0; i < 3000; i++ {
				access(addr.Ref{Block: 2, Write: true})
			}
			return
		}
		var last uint64
		for i := 0; i < 3000; i++ {
			v := access(addr.Ref{Block: 2})
			if v < last {
				t.Errorf("proc %d: version went backwards: %d after %d", proc, v, last)
				return
			}
			last = v
			atomic.StoreUint64(&maxSeen[proc], v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	saw := false
	for p := 1; p < 4; p++ {
		if atomic.LoadUint64(&maxSeen[p]) > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no consumer ever observed a written version")
	}
}

// TestSingleProcessor sanity-checks the degenerate machine.
func TestSingleProcessor(t *testing.T) {
	m, err := New(Config{Procs: 1, Modules: 1, CacheBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(func(proc int, access func(addr.Ref) uint64) {
		access(addr.Ref{Block: 0, Write: true})
		if v := access(addr.Ref{Block: 0}); v == 0 {
			t.Error("read did not observe own write")
		}
		// Evict block 0 (capacity 2, touch 2 more blocks), then re-read.
		access(addr.Ref{Block: 1})
		access(addr.Ref{Block: 2})
		if v := access(addr.Ref{Block: 0}); v == 0 {
			t.Error("write-back lost the value")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMixedWorkloadLong is a longer soak across blocks and operations.
func TestMixedWorkloadLong(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	m, err := New(Config{Procs: 12, Modules: 3, CacheBlocks: 6})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(func(proc int, access func(addr.Ref) uint64) {
		r := rng.New(55, uint64(proc)+40)
		for i := 0; i < 4000; i++ {
			switch {
			case r.Bool(0.2): // lock-style read-modify-write
				b := addr.Block(r.Intn(4))
				access(addr.Ref{Block: b})
				access(addr.Ref{Block: b, Write: true})
			case r.Bool(0.5):
				access(addr.Ref{Block: addr.Block(4 + r.Intn(12)), Write: r.Bool(0.4)})
			default:
				access(addr.Ref{Block: addr.Block(16 + proc), Write: r.Bool(0.3)})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkLiveThroughput measures the goroutine runtime's reference
// throughput, for comparison with the event-driven simulator's
// BenchmarkSimulatorThroughput.
func BenchmarkLiveThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := New(Config{Procs: 8, Modules: 2, CacheBlocks: 8})
		if err != nil {
			b.Fatal(err)
		}
		err = m.Run(func(proc int, access func(addr.Ref) uint64) {
			r := rng.New(9, uint64(proc)+1)
			for j := 0; j < 2000; j++ {
				access(addr.Ref{Block: addr.Block(r.Intn(12)), Write: r.Bool(0.3)})
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8*2000*b.N)/b.Elapsed().Seconds(), "refs/s")
}
