// Package obs is the simulator's observability layer: structured
// sim-time event tracing into a bounded ring buffer, typed counters and
// fixed-bucket latency histograms registered per component, and
// profiling spans around handler dispatch, with a Chrome trace_event
// exporter so a recorded run opens directly in chrome://tracing or
// Perfetto (see chrome.go).
//
// The package is built around one invariant, stated two ways:
//
//   - Free when off. Every hot-path entry point — Recorder.Emit, Begin,
//     End, AsyncBegin, AsyncEnd, Counter.Inc/Add, Histogram.Observe —
//     is a method on a possibly-nil receiver that returns immediately
//     when the receiver is nil. A machine built without a recorder
//     therefore executes a nil check and nothing else per hook.
//     BenchmarkObsDisabled pins this at zero allocations per operation,
//     and scripts/check.sh fails if it ever allocates.
//
//   - Passive when on. A recorder only ever writes its own state: it
//     never schedules kernel events, sends messages, or touches
//     simulation structures, so recording cannot perturb event order.
//     coherencelint's determinism analyzer enforces this statically
//     (any Kernel.At/After or Network.Send/Broadcast call inside this
//     package is a diagnostic) and TestObsDoesNotPerturb in
//     internal/system proves it dynamically: results with and without a
//     recorder are byte-identical.
//
// Track names follow the component convention "cache<k>", "ctrl<j>",
// "dma<d>" (matching internal/system's node naming); metric names are
// "<component>/<metric>", e.g. "ctrl0/queue_depth", with the synthetic
// components "net", "sys" and "kernel" for machine-wide series.
package obs

import (
	"fmt"

	"twobit/internal/sim"
)

// Component identifies a registered trace track (one per cache,
// controller, DMA device, ...). The zero Component is the first
// registered track; NoComponent is what a nil recorder hands out.
type Component int32

// NoComponent is the component id returned by a nil recorder. Events
// emitted against it are dropped by the exporter.
const NoComponent Component = -1

// EventKind classifies a traced event.
type EventKind uint8

const (
	// EventInstant is a point event (a directory transition, a message
	// send).
	EventInstant EventKind = iota
	// EventSpanBegin/EventSpanEnd bracket synchronous work on one
	// track, e.g. handler dispatch; they must nest per track.
	EventSpanBegin
	EventSpanEnd
	// EventAsyncBegin/EventAsyncEnd bracket overlapping transactions
	// keyed by Block (Chrome "b"/"e" async events), e.g. a controller's
	// per-block coherence transactions.
	EventAsyncBegin
	EventAsyncEnd
)

// Event is one ring-buffer entry. Name must be a static (or interned)
// string: the hot path stores it without copying.
type Event struct {
	Tick  sim.Time
	Comp  Component
	Kind  EventKind
	Name  string
	Block int64 // block address the event concerns; -1 when not block-scoped
	Arg   int64 // event-specific payload (fan-out, previous state, ...)
}

// DefaultRingCapacity is the event capacity CLI tools use unless told
// otherwise: 65536 events, enough to hold a small run completely.
const DefaultRingCapacity = 1 << 16

// Recorder collects events and metrics for one machine run. Construct
// with New, hand to system.Config.Obs; a nil *Recorder is the disabled
// instrument — every method is safe and free on it.
//
// A Recorder is deliberately single-threaded, like the event kernel it
// observes; do not share one across concurrently running machines.
type Recorder struct {
	clock func() sim.Time

	comps   []string
	compIdx map[string]Component

	// Registration order is kept in the slices; the maps are lookup
	// only and are never iterated, so no map order can leak anywhere.
	counters   []*Counter
	counterIdx map[string]int
	hists      []*Histogram
	histIdx    map[string]int

	ring    []Event
	head    int // next write slot
	count   int // live events (≤ len(ring))
	dropped uint64

	// spans is the transaction-span aggregator, nil until EnableSpans
	// (see span.go).
	spans *SpanRecorder

	// windows is the windowed time-series aggregator, nil until
	// EnableWindows (see timeseries.go).
	windows *TSRecorder

	// contention is the per-address profiler, nil until
	// EnableContention (see contention.go).
	contention *ContentionRecorder
}

// New returns a recorder with capacity for ringCapacity trace events;
// when full, the oldest events are overwritten (and counted in
// Dropped). ringCapacity ≤ 0 disables event tracing entirely — metrics
// still work, which is what sweep campaigns use.
func New(ringCapacity int) *Recorder {
	r := &Recorder{
		compIdx:    make(map[string]Component),
		counterIdx: make(map[string]int),
		histIdx:    make(map[string]int),
	}
	if ringCapacity > 0 {
		r.ring = make([]Event, ringCapacity)
	}
	return r
}

// SetClock binds the sim-time source events are stamped with; the
// machine calls this with its kernel's Now. Unbound recorders stamp 0.
func (r *Recorder) SetClock(clock func() sim.Time) {
	if r == nil {
		return
	}
	r.clock = clock
}

// Component registers (or looks up) a trace track by name and returns
// its id. Registration is idempotent: the network and the protocol
// agent of one node both resolve the same name to the same track.
func (r *Recorder) Component(name string) Component {
	if r == nil {
		return NoComponent
	}
	if c, ok := r.compIdx[name]; ok {
		return c
	}
	c := Component(len(r.comps))
	r.comps = append(r.comps, name)
	r.compIdx[name] = c
	return c
}

// Components returns the registered track names, indexed by Component.
func (r *Recorder) Components() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.comps))
	copy(out, r.comps)
	return out
}

// Counter registers (or looks up) a named counter.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if i, ok := r.counterIdx[name]; ok {
		return r.counters[i]
	}
	c := &Counter{name: name}
	r.counterIdx[name] = len(r.counters)
	r.counters = append(r.counters, c)
	return c
}

// Histogram registers (or looks up) a named fixed-bucket histogram with
// the given bucket width. Re-registering with a different width panics:
// it is always a wiring bug, and merging such series would be
// meaningless.
func (r *Recorder) Histogram(name string, bucketWidth uint64) *Histogram {
	if r == nil {
		return nil
	}
	if i, ok := r.histIdx[name]; ok {
		h := r.hists[i]
		if h.width != bucketWidth {
			panic(fmt.Sprintf("obs: histogram %q registered with bucket width %d, re-requested with %d",
				name, h.width, bucketWidth))
		}
		return h
	}
	if bucketWidth < 1 {
		panic(fmt.Sprintf("obs: histogram %q needs a bucket width ≥ 1, got %d", name, bucketWidth))
	}
	h := &Histogram{name: name, width: bucketWidth}
	r.histIdx[name] = len(r.hists)
	r.hists = append(r.hists, h)
	return h
}

func (r *Recorder) now() sim.Time {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// record appends one event to the ring, overwriting the oldest entry
// when full. It allocates nothing: the ring is preallocated and the
// name string is stored by reference.
func (r *Recorder) record(kind EventKind, c Component, name string, block, arg int64) {
	if len(r.ring) == 0 {
		return
	}
	if r.count == len(r.ring) {
		r.dropped++
	} else {
		r.count++
	}
	r.ring[r.head] = Event{Tick: r.now(), Comp: c, Kind: kind, Name: name, Block: block, Arg: arg}
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
}

// Emit records an instant event on component c. block is the block
// address the event concerns (-1 when none); arg is free payload.
func (r *Recorder) Emit(c Component, name string, block, arg int64) {
	if r == nil {
		return
	}
	r.record(EventInstant, c, name, block, arg)
}

// Begin opens a synchronous span on component c. Spans must nest per
// component and be closed by End with the same name and block.
func (r *Recorder) Begin(c Component, name string, block int64) {
	if r == nil {
		return
	}
	r.record(EventSpanBegin, c, name, block, 0)
}

// End closes the innermost open span with this name on component c.
func (r *Recorder) End(c Component, name string, block int64) {
	if r == nil {
		return
	}
	r.record(EventSpanEnd, c, name, block, 0)
}

// AsyncBegin opens an overlapping transaction span identified by id
// (conventionally the block address, which is unique among open
// controller transactions).
func (r *Recorder) AsyncBegin(c Component, name string, id int64) {
	if r == nil {
		return
	}
	r.record(EventAsyncBegin, c, name, id, 0)
}

// AsyncEnd closes the transaction span opened with the same name and id.
func (r *Recorder) AsyncEnd(c Component, name string, id int64) {
	if r == nil {
		return
	}
	r.record(EventAsyncEnd, c, name, id, 0)
}

// Events returns the ring's contents oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil || r.count == 0 {
		return nil
	}
	out := make([]Event, 0, r.count)
	start := r.head - r.count
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// EventCount returns the number of events currently held in the ring.
func (r *Recorder) EventCount() int {
	if r == nil {
		return 0
	}
	return r.count
}

// Dropped returns how many events the ring overwrote because it was
// full. A nonzero value means the exported trace shows only the tail of
// the run; raise the ring capacity to see all of it.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// KernelProfile implements sim.Hook, counting executed kernel events
// and the sim-time gaps between them. NewKernelProfile(nil) returns
// nil; a nil profile is a safe no-op hook, but callers should simply
// not install one.
type KernelProfile struct {
	events *Counter
	gaps   *Histogram
	last   sim.Time
	seen   bool
}

// NewKernelProfile registers the kernel series ("kernel/events",
// "kernel/event_gap_cycles") on r and returns the hook to install with
// Kernel.SetHook.
func NewKernelProfile(r *Recorder) *KernelProfile {
	if r == nil {
		return nil
	}
	return &KernelProfile{
		events: r.Counter("kernel/events"),
		gaps:   r.Histogram("kernel/event_gap_cycles", 1),
	}
}

// BeforeEvent implements sim.Hook.
func (p *KernelProfile) BeforeEvent(at sim.Time) {
	if p == nil {
		return
	}
	p.events.Inc()
	if p.seen {
		p.gaps.Observe(uint64(at - p.last))
	}
	p.last = at
	p.seen = true
}

// AfterEvent implements sim.Hook.
func (p *KernelProfile) AfterEvent(at sim.Time) {}
