// Modelcheck: the paper's conclusion — "The protocols and associated
// hardware design need to be refined (and proven correct)" — answered in
// bounded form. For small scenarios, every possible order in which the
// interconnection network could deliver messages is explored (respecting
// only per-pair FIFO), and every interleaving is checked for deadlock,
// coherence violations, and directory-invariant violations.
package main

import (
	"fmt"
	"log"

	"twobit"
)

func check(name string, sc twobit.MCScenario) {
	res, err := twobit.ModelCheck(sc)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	status := "exhaustive"
	if res.Truncated {
		status = "truncated"
	}
	fmt.Printf("  %-28s %8d interleavings, max depth %2d  (%s)\n",
		name, res.Paths, res.MaxDepth, status)
}

func cfg(p twobit.Protocol, procs int) twobit.Config {
	c := twobit.DefaultConfig(p, procs)
	c.Modules = 1
	c.CacheSets = 4
	c.CacheAssoc = 1
	return c
}

func main() {
	fmt.Println("Bounded verification of the two-bit protocol (and the full map):")
	fmt.Println()

	sharedRW := func(write bool) twobit.Ref {
		return twobit.Ref{Block: 0, Write: write, Shared: true}
	}

	fmt.Println("the §3.2.5 racing-MREQUEST scenario, all delivery orders:")
	for _, p := range []twobit.Protocol{twobit.TwoBit, twobit.FullMap} {
		check(p.String(), twobit.MCScenario{
			Config: cfg(p, 2),
			Blocks: 16,
			Scripts: [][]twobit.Ref{
				{sharedRW(false), sharedRW(true)},
				{sharedRW(false), sharedRW(true)},
			},
		})
	}

	fmt.Println()
	fmt.Println("a dirty eviction racing a remote read (EJECT vs BROADQUERY):")
	check("two-bit", twobit.MCScenario{
		Config: cfg(twobit.TwoBit, 2),
		Blocks: 16,
		Scripts: [][]twobit.Ref{
			{sharedRW(true), {Block: 4}, {Block: 8}},
			{sharedRW(false)},
		},
	})

	fmt.Println()
	fmt.Println("three simultaneous write misses to one block:")
	check("two-bit", twobit.MCScenario{
		Config: cfg(twobit.TwoBit, 3),
		Blocks: 16,
		Scripts: [][]twobit.Ref{
			{sharedRW(true)}, {sharedRW(true)}, {sharedRW(true)},
		},
	})

	fmt.Println()
	fmt.Println("Every interleaving completed, stayed coherent, and left the")
	fmt.Println("directory consistent with the caches. The residual races the")
	fmt.Println("paper's §3.2.5 worries about are closed (see DESIGN.md §4).")
}
