package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Machine-readable Grid encodings for cmd/sweep -format=csv|json and for
// archiving campaign aggregates. Both encodings round-trip losslessly:
// cell values are written with strconv's shortest representation that
// parses back to the identical float64.

// WriteCSV renders the grid as CSV. The layout is self-describing so
// ReadGridCSV can invert it exactly:
//
//	title,<Title>
//	axes,<RowLabel>,<ColLabel>,<Decimals>
//	,<col 1>,<col 2>,...
//	<row 1>,<v11>,<v12>,...
func (g *Grid) WriteCSV(w io.Writer) error {
	if err := g.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"title", g.Title}); err != nil {
		return err
	}
	if err := cw.Write([]string{"axes", g.RowLabel, g.ColLabel, strconv.Itoa(g.Decimals)}); err != nil {
		return err
	}
	if err := cw.Write(append([]string{""}, g.Cols...)); err != nil {
		return err
	}
	for i, r := range g.Rows {
		rec := make([]string, 0, len(g.Cols)+1)
		rec = append(rec, r)
		for _, v := range g.Cells[i] {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadGridCSV parses the WriteCSV layout.
func ReadGridCSV(r io.Reader) (*Grid, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("report: reading grid CSV: %w", err)
	}
	if len(recs) < 3 || len(recs[0]) != 2 || recs[0][0] != "title" ||
		len(recs[1]) != 4 || recs[1][0] != "axes" {
		return nil, fmt.Errorf("report: grid CSV lacks the title/axes header")
	}
	g := &Grid{Title: recs[0][1], RowLabel: recs[1][1], ColLabel: recs[1][2]}
	if g.Decimals, err = strconv.Atoi(recs[1][3]); err != nil {
		return nil, fmt.Errorf("report: grid CSV decimals: %w", err)
	}
	if len(recs[2]) < 1 || recs[2][0] != "" {
		return nil, fmt.Errorf("report: grid CSV column header must start with an empty cell")
	}
	g.Cols = append(g.Cols, recs[2][1:]...)
	for _, rec := range recs[3:] {
		if len(rec) != len(g.Cols)+1 {
			return nil, fmt.Errorf("report: grid CSV row %q has %d cells, want %d", rec[0], len(rec)-1, len(g.Cols))
		}
		g.Rows = append(g.Rows, rec[0])
		row := make([]float64, len(g.Cols))
		for i, s := range rec[1:] {
			if row[i], err = strconv.ParseFloat(s, 64); err != nil {
				return nil, fmt.Errorf("report: grid CSV cell %q: %w", s, err)
			}
		}
		g.Cells = append(g.Cells, row)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// gridJSON is the explicit JSON schema; the tags, not the Go field names,
// define the format.
type gridJSON struct {
	Title    string      `json:"title"`
	RowLabel string      `json:"row_label"`
	ColLabel string      `json:"col_label"`
	Rows     []string    `json:"rows"`
	Cols     []string    `json:"cols"`
	Cells    [][]float64 `json:"cells"`
	Decimals int         `json:"decimals"`
}

// MarshalJSON encodes the grid in the stable schema.
func (g *Grid) MarshalJSON() ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(gridJSON{
		Title: g.Title, RowLabel: g.RowLabel, ColLabel: g.ColLabel,
		Rows: g.Rows, Cols: g.Cols, Cells: g.Cells, Decimals: g.Decimals,
	})
}

// UnmarshalJSON decodes the MarshalJSON schema.
func (g *Grid) UnmarshalJSON(data []byte) error {
	var j gridJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("report: decoding grid JSON: %w", err)
	}
	*g = Grid{
		Title: j.Title, RowLabel: j.RowLabel, ColLabel: j.ColLabel,
		Rows: j.Rows, Cols: j.Cols, Cells: j.Cells, Decimals: j.Decimals,
	}
	return g.Validate()
}

// ReadGridJSON parses one JSON-encoded grid.
func ReadGridJSON(r io.Reader) (*Grid, error) {
	var g Grid
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
