package tracegen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"twobit/internal/addr"
	"twobit/internal/workload"
)

func cacheSpec(procs int, seed uint64) Spec {
	return Resolve(Spec{Name: "kv-serving"}).At(procs, 0.2, 0.4, seed)
}

// drain pulls refsPerProc references per processor from gen in the
// round-robin order the simulator's processors approximate.
func drain(gen workload.Generator, procs, refsPerProc int) [][]addr.Ref {
	out := make([][]addr.Ref, procs)
	for i := 0; i < refsPerProc; i++ {
		for p := 0; p < procs; p++ {
			out[p] = append(out[p], gen.Next(p))
		}
	}
	return out
}

// TestCachedGeneratorMatchesLive pins the cache's core contract: the
// replayed segment — on both the miss path (synthesize + store) and
// the hit path (reuse) — yields exactly the references and address
// space that live generation does.
func TestCachedGeneratorMatchesLive(t *testing.T) {
	const procs, refs = 4, 500
	spec := cacheSpec(procs, 99)
	want := drain(New(spec), procs, refs)
	dir := t.TempDir()

	for _, pass := range []string{"miss", "hit"} {
		gen, err := CachedGenerator(dir, spec, refs)
		if err != nil {
			t.Fatalf("%s: %v", pass, err)
		}
		if gen.Blocks() != spec.Blocks() {
			t.Errorf("%s: Blocks() = %d, live spec says %d", pass, gen.Blocks(), spec.Blocks())
		}
		got := drain(gen, procs, refs)
		for p := range want {
			for i := range want[p] {
				if got[p][i] != want[p][i] {
					t.Fatalf("%s: proc %d ref %d = %+v, live %+v", pass, p, i, got[p][i], want[p][i])
				}
			}
		}
		if err := CloseGenerator(gen); err != nil {
			t.Fatalf("%s: close: %v", pass, err)
		}
	}

	// Exactly one segment, no leftover temporaries.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Ext(entries[0].Name()) != ".mtrc2" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("cache dir holds %v, want one .mtrc2 segment", names)
	}
}

// TestCacheHitByteIdentical pins that a cached segment's bytes are
// exactly what regeneration produces, so a hit can never replay a
// different trace than a miss would have written.
func TestCacheHitByteIdentical(t *testing.T) {
	spec := cacheSpec(2, 7)
	dir := t.TempDir()
	path, hit, err := EnsureSegment(dir, spec, 300)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first EnsureSegment reported a hit")
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	path2, hit, err := EnsureSegment(dir, spec, 300)
	if err != nil {
		t.Fatal(err)
	}
	if hit || path2 != path {
		t.Fatalf("regeneration: hit=%v path=%s, want miss at %s", hit, path2, path)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("regenerated segment differs from the original bytes")
	}
	if _, hit, err = EnsureSegment(dir, spec, 300); err != nil || !hit {
		t.Fatalf("third EnsureSegment: hit=%v err=%v, want clean hit", hit, err)
	}
}

// TestCacheKeySeparatesSegments pins that the key covers the axes that
// change a segment's content: spec fields (seed, procs) and the
// reference count each map to distinct files.
func TestCacheKeySeparatesSegments(t *testing.T) {
	dir := t.TempDir()
	base := cacheSpec(2, 7)
	paths := map[string]string{}
	for _, c := range []struct {
		label string
		spec  Spec
		refs  int
	}{
		{"base", base, 300},
		{"seed", cacheSpec(2, 8), 300},
		{"procs", cacheSpec(4, 7), 300},
		{"refs", base, 400},
	} {
		p, err := SegmentPath(dir, c.spec, c.refs)
		if err != nil {
			t.Fatal(err)
		}
		for prev, pp := range paths {
			if pp == p {
				t.Fatalf("%s and %s share segment path %s", c.label, prev, p)
			}
		}
		paths[c.label] = p
	}
}

// TestCacheSelfHealsCorruptEntry pins the recovery path: a truncated
// or foreign file at the keyed name is regenerated, not replayed.
func TestCacheSelfHealsCorruptEntry(t *testing.T) {
	const procs, refs = 2, 200
	spec := cacheSpec(procs, 3)
	dir := t.TempDir()
	path, err := SegmentPath(dir, spec, refs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	gen, err := CachedGenerator(dir, spec, refs)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGenerator(gen)
	want := drain(New(spec), procs, refs)
	got := drain(gen, procs, refs)
	for p := range want {
		for i := range want[p] {
			if got[p][i] != want[p][i] {
				t.Fatalf("after heal: proc %d ref %d = %+v, live %+v", p, i, got[p][i], want[p][i])
			}
		}
	}
}
