package mcheck

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/directory"
	"twobit/internal/msg"
)

// doomed reports whether cache k's copy of b is scheduled for
// destruction by an in-flight controller command: a BROADINV or INV
// still queued toward k, or a write-flavored BROADQUERY/PURGE that will
// make the owner relinquish the block. The coherence invariants exempt
// doomed copies — the two-bit protocol's invalidations are
// fire-and-forget, so a stale copy with its invalidation in flight is
// the designed behavior (§3.2.3), not a defect.
func doomed(v view, b addr.Block, k int) bool {
	top := v.topo()
	for _, m := range v.pending(top.CtrlNode(0), top.CacheNode(k)) {
		if m.Block != b {
			continue
		}
		if m.Kind == msg.KindBroadInv || m.Kind == msg.KindInv {
			return true
		}
		if (m.Kind == msg.KindBroadQuery || m.Kind == msg.KindPurge) && m.RW == msg.Write {
			return true
		}
	}
	return false
}

// checkCoherence verifies the single-writer / no-stale-reader
// invariants on every state:
//
//	I1 (swmr): per block, at most one live (non-doomed) modified copy,
//	    and while it exists every other copy of the block is doomed.
//	I2/I3 (stale-read): every live copy — modified or clean — holds the
//	    block's current committed version.
func checkCoherence(v view) *Violation {
	for b := 0; b < v.blocks(); b++ {
		blk := addr.Block(b)
		cur := v.currentOf(blk)
		owner := -1    // cache with a live modified copy
		liveClean := 0 // live clean copies
		for k := 0; k < v.caches(); k++ {
			f := v.agent(k).Store().Lookup(blk)
			if f == nil {
				continue
			}
			if doomed(v, blk, k) {
				continue
			}
			if f.Modified {
				if owner >= 0 {
					return &Violation{Kind: "swmr", Detail: fmt.Sprintf(
						"block %d modified in caches %d and %d simultaneously", b, owner, k)}
				}
				owner = k
				if f.Data != cur {
					return &Violation{Kind: "stale-read", Detail: fmt.Sprintf(
						"block %d modified copy in cache %d holds v%d, current is v%d", b, k, f.Data, cur)}
				}
				continue
			}
			liveClean++
			if f.Data != cur {
				return &Violation{Kind: "stale-read", Detail: fmt.Sprintf(
					"block %d clean copy in cache %d holds v%d, current is v%d (no invalidation in flight)",
					b, k, f.Data, cur)}
			}
		}
		if owner >= 0 && liveClean > 0 {
			return &Violation{Kind: "swmr", Detail: fmt.Sprintf(
				"block %d modified in cache %d while %d live clean copies exist", b, owner, liveClean)}
		}
	}
	return nil
}

// checkDeadlock runs at rest states (no deliverable message): with
// nothing left to deliver the machine must be fully at rest — every
// processor reference completed, every cache agent idle, the controller
// quiescent (no active transaction, no queued command, no stashed put,
// no parked continuation).
func checkDeadlock(v view) *Violation {
	for k := 0; k < v.caches(); k++ {
		if v.busyProc(k) {
			return &Violation{Kind: "deadlock", Detail: fmt.Sprintf(
				"processor %d has a reference outstanding but nothing is deliverable", k)}
		}
		if v.agent(k).Snapshot().Busy {
			return &Violation{Kind: "deadlock", Detail: fmt.Sprintf(
				"cache agent %d mid-transaction but nothing is deliverable", k)}
		}
	}
	if !v.ctrlQuiescent() {
		return &Violation{Kind: "deadlock", Detail: "controller not quiescent but nothing is deliverable"}
	}
	for b := 0; b < v.blocks(); b++ {
		cb := v.ctrlBlock(addr.Block(b))
		if cb.Active || cb.Waiting || cb.AwaitingAck || len(cb.Stashed) > 0 || len(cb.Queued) > 0 {
			return &Violation{Kind: "deadlock", Detail: fmt.Sprintf(
				"controller block %d has residual transaction state but nothing is deliverable", b)}
		}
	}
	return nil
}

// checkConformance runs at quiescent rest states — nothing deliverable,
// nothing outstanding — where the directory's compressed bookkeeping
// must agree with ground truth. For the two-bit scheme the agreement is
// exactly as loose as §3.1 allows (Present* may overcount); the full
// map must be exact.
func checkConformance(v view) *Violation {
	for b := 0; b < v.blocks(); b++ {
		blk := addr.Block(b)
		cb := v.ctrlBlock(blk)
		cur := v.currentOf(blk)
		copies, modified := 0, 0
		var holders uint64
		for k := 0; k < v.caches(); k++ {
			f := v.agent(k).Store().Lookup(blk)
			if f == nil {
				continue
			}
			copies++
			holders |= 1 << uint(k)
			if f.Modified {
				modified++
			}
		}
		bad := func(format string, args ...any) *Violation {
			return &Violation{Kind: "conformance", Detail: fmt.Sprintf(
				"block %d in %v: ", b, directory.State(cb.State)) + fmt.Sprintf(format, args...)}
		}
		if v.protocol() == FullMap {
			if cb.Holders != holders {
				return bad("presence bits %b but actual holders %b", cb.Holders, holders)
			}
			if cb.Modified != (modified == 1) || modified > 1 {
				return bad("m-bit %v but %d modified copies", cb.Modified, modified)
			}
			if !cb.Modified && cb.Mem != cur {
				return bad("memory holds v%d, current is v%d", cb.Mem, cur)
			}
			continue
		}
		switch directory.State(cb.State) {
		case directory.Absent:
			if copies != 0 {
				return bad("%d copies cached", copies)
			}
			if cb.Mem != cur {
				return bad("memory holds v%d, current is v%d", cb.Mem, cur)
			}
		case directory.Present1:
			if copies != 1 || modified != 0 {
				return bad("%d copies (%d modified), want exactly one clean", copies, modified)
			}
			if cb.Mem != cur {
				return bad("memory holds v%d, current is v%d", cb.Mem, cur)
			}
		case directory.PresentStar:
			// Present* may overcount (ejected read copies are not
			// tracked), so any copy count — including zero — conforms.
			if modified != 0 {
				return bad("%d modified copies under a read-only state", modified)
			}
			if cb.Mem != cur {
				return bad("memory holds v%d, current is v%d", cb.Mem, cur)
			}
		case directory.PresentM:
			if copies != 1 || modified != 1 {
				return bad("%d copies (%d modified), want exactly one modified", copies, modified)
			}
		}
	}
	return nil
}

// checkState runs every per-state property: coherence always, and the
// deadlock + conformance obligations when the state is at rest.
func checkState(v view, rest bool) *Violation {
	if viol := checkCoherence(v); viol != nil {
		return viol
	}
	if !rest {
		return nil
	}
	if viol := checkDeadlock(v); viol != nil {
		return viol
	}
	return checkConformance(v)
}
