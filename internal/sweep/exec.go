package sweep

import (
	"encoding/json"
	"fmt"
	"sync"

	"twobit/internal/obs"
	"twobit/internal/system"
	"twobit/internal/tracegen"
)

// Record is one completed run: the point's coordinates plus either the
// stable-encoded results or the simulation's error. The JSON field order
// is fixed by this struct, and Results carries the system wire schema
// verbatim, so a record marshals to the same bytes on every execution.
type Record struct {
	RunID     int             `json:"run_id"`
	Protocol  string          `json:"protocol"`
	Net       string          `json:"net"`
	Q         float64         `json:"q"`
	W         float64         `json:"w"`
	Procs     int             `json:"procs"`
	Replicate int             `json:"replicate"`
	Scenario  string          `json:"scenario,omitempty"`
	Seed      uint64          `json:"seed"`
	Err       string          `json:"err,omitempty"`
	Results   json.RawMessage `json:"results,omitempty"`
}

// Decode returns the run's results (an error for records of failed runs).
func (r Record) Decode() (system.Results, error) {
	if r.Err != "" {
		return system.Results{}, fmt.Errorf("sweep: run %d failed: %s", r.RunID, r.Err)
	}
	return system.DecodeResults(r.Results)
}

// runners recycles worker Runners — and with them the pooled machine
// graphs, kernel heaps, oracle tables and encode buffers they own —
// across campaigns, so back-to-back executions (benchmark iterations,
// sweep resumes, CLI sessions driving several plans) construct
// machines only on first use. Sound because a Runner is
// goroutine-confined while checked out and Runner.Run restores all
// pooled state before every run.
var runners = sync.Pool{New: func() any { return system.NewRunner() }}

// testRunStall, when non-nil, is called by a worker just before it runs
// a point — a test hook for provoking worker skew (a stalled low run id
// with fast successors) against the re-sequencer's backpressure bound.
// Always nil outside tests.
var testRunStall func(Point)

// runPoint executes one hermetic simulation on rn's pooled state. A run
// that fails (deadlock, coherence violation, invariant violation)
// produces a record with Err set rather than aborting the campaign: the
// failure is itself a deterministic, reportable result.
func runPoint(p *Plan, pt Point, rn *system.Runner) Record {
	rec := Record{
		RunID:     pt.RunID,
		Protocol:  pt.Protocol.String(),
		Net:       pt.Net.String(),
		Q:         pt.Q,
		W:         pt.W,
		Procs:     pt.Procs,
		Replicate: pt.Replicate,
		Scenario:  pt.Scenario,
		Seed:      pt.Seed,
	}
	gen := p.generator(pt)
	defer tracegen.CloseGenerator(gen) // cached trace segments hold an mmap
	cfg := p.Config(pt)
	if p.Obs || p.Spans || p.ObsWindow > 0 || p.ObsTopK > 0 {
		cfg.Obs = obs.New(0) // metrics only: no event ring in stored campaigns
		if p.Spans {
			cfg.Obs.EnableSpans(0) // matrix only: no per-span retention
		}
		if p.ObsWindow > 0 {
			cfg.Obs.EnableWindows(p.ObsWindow)
		}
		if p.ObsTopK > 0 {
			cfg.Obs.EnableContention(p.ObsTopK)
		}
	}
	res, err := rn.Run(cfg, gen, p.RefsPerProc)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	enc, err := rn.EncodeStable(res)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Results = enc
	return rec
}

// divergence names the first coordinate on which rec differs from pt,
// or "" when the record matches the point.
func divergence(rec Record, pt Point) string {
	switch {
	case rec.Seed != pt.Seed:
		return "seed"
	case rec.Protocol != pt.Protocol.String():
		return "protocol"
	case rec.Net != pt.Net.String():
		return "net"
	case rec.Scenario != pt.Scenario:
		return "scenario"
	case rec.Q != pt.Q:
		return "q"
	case rec.W != pt.W:
		return "w"
	case rec.Procs != pt.Procs:
		return "procs"
	case rec.Replicate != pt.Replicate:
		return "replicate"
	}
	return ""
}

// matchRecord verifies one stored record against the plan point its run
// id expands to, naming the diverging coordinate in the error.
func matchRecord(rec Record, pt Point) error {
	field := divergence(rec, pt)
	if field == "" {
		return nil
	}
	return fmt.Errorf("sweep: store record %d (%s/%s scen=%q q=%g w=%g n=%d rep=%d seed=%d) was produced by a different plan (%s diverges): run %d expands to %s/%s scen=%q q=%g w=%g n=%d rep=%d seed=%d",
		rec.RunID, rec.Protocol, rec.Net, rec.Scenario, rec.Q, rec.W, rec.Procs, rec.Replicate, rec.Seed,
		field, pt.RunID, pt.Protocol, pt.Net, pt.Scenario, pt.Q, pt.W, pt.Procs, pt.Replicate, pt.Seed)
}

// CheckPrefix verifies that a store's checkpointed records are a prefix
// of this plan's expansion — the guard against resuming a store that a
// different plan (other axes, other root seed) produced, which would
// silently mix foreign results into the aggregate.
func CheckPrefix(p *Plan, recs []Record) error {
	points, err := p.Points()
	if err != nil {
		return err
	}
	if len(recs) > len(points) {
		return fmt.Errorf("sweep: store holds %d runs but the plan expands to %d", len(recs), len(points))
	}
	for i, rec := range recs {
		if rec.RunID != i {
			return fmt.Errorf("sweep: store record %d is out of sequence (run id %d)", i, rec.RunID)
		}
		if err := matchRecord(rec, points[i]); err != nil {
			return err
		}
	}
	return nil
}

// CheckSubset is CheckPrefix for shard stores: it verifies records
// holding any subset of the plan's run ids — each record must match the
// point its id expands to. The contiguity requirement is dropped
// because a sharded campaign legally holds gaps (other shards' runs,
// and runs lost to a mid-campaign kill).
func CheckSubset(p *Plan, recs []Record) error {
	points, err := p.Points()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.RunID < 0 || rec.RunID >= len(points) {
			return fmt.Errorf("sweep: store record with run id %d outside plan of %d runs", rec.RunID, len(points))
		}
		if err := matchRecord(rec, points[rec.RunID]); err != nil {
			return err
		}
	}
	return nil
}

// Execute runs the plan's points with ids ≥ startAt on a pool of workers
// and hands each finished record to emit in strictly increasing run-id
// order — the property that makes parallel output byte-identical to
// workers=1 output. emit is called from the Execute goroutine only. A
// non-nil error from emit aborts the campaign after the in-flight runs
// drain.
func Execute(p *Plan, workers, startAt int, emit func(Record) error) error {
	return ExecuteObserved(p, workers, startAt, emit, nil)
}

// resequenceLimit bounds the records the re-sequencer may hold: jobs in
// flight plus completed-but-unemitted records never exceed it, so a
// stalled low run id cannot let faster workers accumulate output without
// limit. Twice the pool keeps every worker busy while the oldest run
// drags; the +2 keeps a 1-worker pool pipelined.
func resequenceLimit(workers int) int { return 2*workers + 2 }

// ExecuteObserved is Execute with a telemetry publisher: prog (which may
// be nil for none) sees every run start, completion and ordered
// emission. Telemetry is strictly wall-clock bookkeeping about the
// worker pool — it never feeds back into a run, so an observed campaign
// produces byte-identical records.
func ExecuteObserved(p *Plan, workers, startAt int, emit func(Record) error, prog *Progress) error {
	if err := p.Validate(); err != nil {
		return err
	}
	points, err := p.Points()
	if err != nil {
		return err
	}
	if startAt < 0 || startAt > len(points) {
		return fmt.Errorf("sweep: resume offset %d outside plan of %d runs", startAt, len(points))
	}
	points = points[startAt:]
	if workers < 1 {
		workers = 1
	}
	if workers > len(points) {
		workers = len(points)
	}
	if len(points) == 0 {
		return nil
	}

	jobs := make(chan Point)
	results := make(chan Record, workers)
	stop := make(chan struct{}) // closed on emit error: stop feeding new runs
	// Backpressure tokens: the feeder takes one per job, the
	// re-sequencer returns one per record it sequences out, so at most
	// resequenceLimit runs are past the feeder but short of the store.
	tokens := make(chan struct{}, resequenceLimit(workers))
	prog.begin(workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rn := runners.Get().(*system.Runner)
			defer runners.Put(rn)
			for pt := range jobs {
				prog.noteRunStart(w)
				if testRunStall != nil {
					testRunStall(pt)
				}
				rec := runPoint(p, pt, rn)
				prog.noteRunDone(w, rec.Err != "")
				results <- rec
			}
		}(i)
	}
	go func() {
		defer close(jobs)
		for _, pt := range points {
			select {
			case tokens <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case jobs <- pt:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Re-sequencer: workers finish out of order; hold records until the
	// next expected id arrives, then emit the contiguous run.
	pending := make(map[int]Record, resequenceLimit(workers))
	next := startAt
	var emitErr error
	for rec := range results {
		pending[rec.RunID] = rec
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-tokens
			if emitErr == nil {
				if emitErr = emit(r); emitErr != nil {
					close(stop)
				} else {
					prog.noteEmitted()
				}
			}
			next++
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if len(pending) != 0 {
		return fmt.Errorf("sweep: %d records never sequenced (first gap at run %d)", len(pending), next)
	}
	return nil
}

// ExecuteSharded runs the plan's points for which want returns true
// (nil means all) on a pool of workers, each worker persisting its own
// completed records through sink(worker, rec) from the worker's
// goroutine — there is no re-sequencer and no cross-worker ordering, so
// the emit path cannot serialize the pool. Each worker's records arrive
// at its sink in strictly increasing run-id order (jobs are fed in
// order), which is what makes per-worker shard files mergeable by a
// streaming k-way merge. A sink error aborts the campaign after
// in-flight runs drain.
func ExecuteSharded(p *Plan, workers int, want func(runID int) bool, sink func(worker int, rec Record) error) error {
	return ExecuteShardedObserved(p, workers, want, sink, nil)
}

// ExecuteShardedObserved is ExecuteSharded with a telemetry publisher.
func ExecuteShardedObserved(p *Plan, workers int, want func(runID int) bool, sink func(worker int, rec Record) error, prog *Progress) error {
	if err := p.Validate(); err != nil {
		return err
	}
	all, err := p.Points()
	if err != nil {
		return err
	}
	points := all
	if want != nil {
		points = make([]Point, 0, len(all))
		for _, pt := range all {
			if want(pt.RunID) {
				points = append(points, pt)
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(points) {
		workers = len(points)
	}
	if len(points) == 0 {
		return nil
	}

	jobs := make(chan Point)
	stop := make(chan struct{})
	var once sync.Once
	var sinkErr error
	abort := func(err error) {
		once.Do(func() {
			sinkErr = err
			close(stop)
		})
	}
	prog.begin(workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rn := runners.Get().(*system.Runner)
			defer runners.Put(rn)
			for pt := range jobs {
				prog.noteRunStart(w)
				if testRunStall != nil {
					testRunStall(pt)
				}
				rec := runPoint(p, pt, rn)
				prog.noteRunDone(w, rec.Err != "")
				if err := sink(w, rec); err != nil {
					abort(err)
					return
				}
				prog.noteEmitted()
			}
		}(i)
	}
	go func() {
		defer close(jobs)
		for _, pt := range points {
			select {
			case jobs <- pt:
			case <-stop:
				return
			}
		}
	}()
	wg.Wait()
	return sinkErr
}

// Collect executes the whole plan in memory and returns the ordered
// records — the convenience entry point for callers that do not need a
// persistent store (cmd/tables, benchmarks, tests).
func Collect(p *Plan, workers int) ([]Record, error) {
	recs := make([]Record, 0, p.Size())
	err := Execute(p, workers, 0, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return recs, nil
}
