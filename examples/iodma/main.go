// Iodma: the concern §2.2 raises — "I/O handling in the case of a
// write-back policy raises also some difficulties" — made concrete.
// DMA devices stream uncached reads and writes through the two-bit
// memory controllers while processors cache and modify the same blocks.
// The directory drains modified owners before device reads and
// invalidates every copy before device writes, so I/O stays coherent
// with zero changes to the caches.
package main

import (
	"fmt"
	"log"

	"twobit"
)

func run(devices int) twobit.Results {
	const procs = 8
	cfg := twobit.DefaultConfig(twobit.TwoBit, procs)
	cfg.DMA = twobit.DMAConfig{Devices: devices, Blocks: 16, WriteFrac: 0.5}
	gen := twobit.NewSharedPrivateWorkload(twobit.SharedPrivateConfig{
		Procs: procs, SharedBlocks: 16, Q: 0.1, W: 0.3,
		PrivateHit: 0.9, PrivateWrite: 0.3, HotBlocks: 64, ColdBlocks: 512, Seed: 13,
	})
	m, err := twobit.NewMachine(cfg, gen)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(15000)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Coherent I/O through the two-bit directory (§2.2's difficulty):")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %12s %14s %12s\n",
		"devices", "DMA reads", "DMA writes", "broadcasts", "useless/ref", "ctrl util")
	for _, devices := range []int{0, 1, 2, 4} {
		res := run(devices)
		var dmaReads, dmaWrites uint64
		for _, c := range res.Ctrl {
			dmaReads += c.DMAReads.Value()
			dmaWrites += c.DMAWrites.Value()
		}
		fmt.Printf("%-10d %12d %12d %12d %14.4f %12.3f\n",
			devices, dmaReads, dmaWrites, res.Broadcasts,
			res.UselessPerCachePerRef, res.CtrlUtilization)
	}
	fmt.Println()
	fmt.Println("Every device read observed the most recently committed value and no")
	fmt.Println("device write was overwritten by a stale write-back — verified by the")
	fmt.Println("coherence oracle on every operation. Device traffic adds broadcasts")
	fmt.Println("(each DMA write must invalidate unknown holders), which is exactly")
	fmt.Println("the two-bit economy trade-off extended to I/O.")
}
