//go:build linux

package memtrace

import (
	"bytes"
	"io"
	"os"
	"syscall"
)

// mmapBacking maps a chunked trace read-only so replay reads fault
// pages in on demand — the kernel's page cache is the chunk cache, and
// a 100M-reference file costs no heap at all.
type mmapBacking struct {
	f    *os.File
	data []byte
}

func (m *mmapBacking) Close() error {
	err := syscall.Munmap(m.data)
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// openStreamBacking maps f and opens a StreamReader over the mapping.
// If mmap fails (exotic filesystems, size 0), it falls back to pread
// on the file itself.
func openStreamBacking(f *os.File, size int64) (*StreamReader, io.Closer, error) {
	if size > 0 && size <= int64(int(^uint(0)>>1)) {
		data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			sr, serr := OpenStream(bytes.NewReader(data), size)
			if serr != nil {
				syscall.Munmap(data)
				return nil, nil, serr
			}
			return sr, &mmapBacking{f: f, data: data}, nil
		}
	}
	sr, err := OpenStream(f, size)
	if err != nil {
		return nil, nil, err
	}
	return sr, f, nil
}
