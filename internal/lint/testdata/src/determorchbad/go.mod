module determorchbad

go 1.22
