package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// kernelScheduleName reports whether the call is a closure-form kernel
// scheduling method (At/After on the SimPath kernel) and returns the
// method name. The pooled forms AtCall/AfterCall are exactly what the
// hot-path analyzer steers code toward, so they are not matched here.
func kernelScheduleName(p *pkg, call *ast.CallExpr, cfg Config) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection := p.info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != cfg.SimPath {
		return "", false
	}
	name := sel.Sel.Name
	if name != "At" && name != "After" {
		return "", false
	}
	return name, true
}

// checkHotPath applies the closure-in-hotpath analyzer: inside the
// packages listed in cfg.HotPaths (by default the network and core
// packages — the per-message and per-transaction fan-out layers), a
// kernel At/After call whose function argument is a closure capturing a
// variable declared in an enclosing loop is a finding. Such a closure
// cannot be hoisted: it allocates once per iteration, on exactly the
// paths the zero-allocation gate in scripts/check.sh protects. The fix
// is the pooled AtCall/AfterCall form, or hoisting the state the
// closure needs into a reused record.
func checkHotPath(mod *module, cfg Config) []Diagnostic {
	hot := make(map[string]bool, len(cfg.HotPaths))
	for _, h := range cfg.HotPaths {
		hot[h] = true
	}
	var diags []Diagnostic
	for _, p := range mod.sorted() {
		if !hot[p.path] {
			continue
		}
		for _, f := range p.files {
			// Collect every loop in the file; a call's enclosing loops
			// are the ones whose source range contains it.
			var loops []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loops = append(loops, n)
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := kernelScheduleName(p, call, cfg)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					lit, ok := arg.(*ast.FuncLit)
					if !ok {
						continue
					}
					if v, ok := capturesLoopVar(p, lit, loops); ok {
						diags = append(diags, Diagnostic{
							Pos:      mod.fset.Position(call.Pos()),
							Analyzer: AnalyzerHotPath,
							Message: fmt.Sprintf(
								"hot-path package %s passes %s a closure capturing loop variable %s: one allocation per iteration; use the pooled %sCall form or hoist the state",
								p.path, method, v, method),
						})
					}
				}
				return true
			})
		}
	}
	return diags
}

// capturesLoopVar reports whether lit uses a variable declared inside a
// loop that encloses lit — i.e. state that is fresh every iteration, so
// the closure must be too.
func capturesLoopVar(p *pkg, lit *ast.FuncLit, loops []ast.Node) (string, bool) {
	var name string
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the literal itself: not a capture.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		for _, loop := range loops {
			if loop.Pos() > lit.Pos() || lit.End() > loop.End() {
				continue // loop does not enclose the literal
			}
			if v.Pos() >= loop.Pos() && v.Pos() < lit.Pos() {
				name, found = id.Name, true
				return false
			}
		}
		return true
	})
	return name, found
}
