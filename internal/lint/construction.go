package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkConstruction applies the pooled-construction analyzer: an
// orchestrator package (the experiment-campaign engine) must not call an
// exported New* constructor declared in a machine-component package. The
// pooled machine graph exists so that a sweep constructs each worker's
// caches, memory modules, directories and networks exactly once and
// resets them between runs; a component constructor reappearing in the
// orchestrator is per-run construction sneaking back in — the regression
// the allocation gate in scripts/bench.sh measures after the fact, caught
// here before the code runs. The sanctioned entry points (the Runner
// constructor that owns the pool) are listed in cfg.AllowedConstructors;
// anything else needs a //lint:allow pooled-construction directive with a
// written reason, as a one-shot path like trace export does.
func checkConstruction(mod *module, cfg Config) []Diagnostic {
	comp := make(map[string]bool, len(cfg.ComponentPaths))
	for _, c := range cfg.ComponentPaths {
		comp[c] = true
	}
	orch := make(map[string]bool, len(cfg.Orchestrators))
	for _, o := range cfg.Orchestrators {
		orch[o] = true
	}
	allowed := make(map[string]bool, len(cfg.AllowedConstructors))
	for _, a := range cfg.AllowedConstructors {
		allowed[a] = true
	}
	var diags []Diagnostic
	for _, p := range mod.sorted() {
		if !orch[p.path] {
			continue
		}
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := call.Fun.(type) {
				case *ast.SelectorExpr:
					id = fun.Sel
				case *ast.Ident:
					id = fun
				default:
					return true
				}
				obj, ok := p.info.Uses[id].(*types.Func)
				if !ok || obj.Pkg() == nil || !comp[obj.Pkg().Path()] {
					return true
				}
				if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods are not constructors
				}
				name := obj.Name()
				if !constructorName(name) {
					return true
				}
				if allowed[obj.Pkg().Path()+"."+name] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      mod.fset.Position(call.Pos()),
					Analyzer: AnalyzerConstruction,
					Message: fmt.Sprintf(
						"orchestrator package %s calls component constructor %s.%s: the pooled machine graph is built once per worker and reset between runs; construct through the pooled runner or document the one-shot path with //lint:allow",
						p.path, obj.Pkg().Path(), name),
				})
				return true
			})
		}
	}
	return diags
}

// constructorName matches the Go constructor convention: New, or New
// followed by an exported-style name (NewModule, NewSerializer). A lower
// continuation (Newt) is an ordinary word, not a constructor.
func constructorName(name string) bool {
	if name == "New" {
		return true
	}
	if len(name) > 3 && name[:3] == "New" {
		c := name[3]
		return c >= 'A' && c <= 'Z'
	}
	return false
}
