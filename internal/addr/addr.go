// Package addr defines the address model shared by every component of the
// simulated multiprocessor.
//
// The protocols in the paper operate on memory *blocks* (the unit of
// caching, transfer and directory bookkeeping), so the simulator's primary
// address type is a block number. Byte addresses appear only at the edge
// (processor references carry a displacement d within the block, per the
// paper's LOAD(a,d)/STORE(a,d)).
package addr

import "fmt"

// Block is a main-memory block number. Blocks are the granularity of the
// caches, the interconnection-network transfers, and the global directory.
type Block uint64

// String implements fmt.Stringer, e.g. "blk#42".
func (b Block) String() string { return fmt.Sprintf("blk#%d", uint64(b)) }

// Module returns the index of the memory module (and hence the memory
// controller K_i) that owns b when blocks are interleaved across modules
// modules, matching the paper's distributed-controller organization in
// Figure 3-1. modules must be positive.
func (b Block) Module(modules int) int {
	if modules <= 0 {
		panic("addr: Module with non-positive module count")
	}
	return int(uint64(b) % uint64(modules))
}

// Ref is a single processor memory reference: the paper's LOAD(a,d) or
// STORE(a,d).
type Ref struct {
	Block  Block // a: the block address
	Disp   int   // d: displacement of the referenced unit within the block
	Write  bool  // true for STORE, false for LOAD
	Shared bool  // workload annotation: reference belongs to the shared stream
}

// String renders the reference in the paper's notation.
func (r Ref) String() string {
	op := "LOAD"
	if r.Write {
		op = "STORE"
	}
	return fmt.Sprintf("%s(%s,%d)", op, r.Block, r.Disp)
}

// Space describes the simulated physical address space layout.
type Space struct {
	Blocks  int // number of memory blocks in the machine
	Modules int // number of memory modules (each with its controller)
}

// Validate reports an error if the layout is unusable.
func (s Space) Validate() error {
	if s.Blocks <= 0 {
		return fmt.Errorf("addr: space must have at least one block, got %d", s.Blocks)
	}
	if s.Modules <= 0 {
		return fmt.Errorf("addr: space must have at least one module, got %d", s.Modules)
	}
	return nil
}

// BlocksInModule returns how many blocks module m owns under interleaving.
func (s Space) BlocksInModule(m int) int {
	if m < 0 || m >= s.Modules {
		panic(fmt.Sprintf("addr: module %d out of range [0,%d)", m, s.Modules))
	}
	n := s.Blocks / s.Modules
	if m < s.Blocks%s.Modules {
		n++
	}
	return n
}

// LocalIndex maps block b to a dense [0, BlocksInModule) index within its
// module, so per-module directories can be stored in flat slices.
func (s Space) LocalIndex(b Block) int {
	return int(uint64(b) / uint64(s.Modules))
}
