package system

import (
	"testing"

	"twobit/internal/workload"
)

func dmaCfg(p Protocol, procs, devices int) Config {
	cfg := DefaultConfig(p, procs)
	cfg.DMA = DMAConfig{Devices: devices, Blocks: 16, WriteFrac: 0.5}
	return cfg
}

// TestDMACoherentWithProcessors runs DMA devices against caching
// processors on the same shared blocks: device reads must see the latest
// committed values and device writes must never be overwritten by stale
// write-backs.
func TestDMACoherentWithProcessors(t *testing.T) {
	for _, p := range []Protocol{TwoBit, FullMap, FullMapExclusive} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := dmaCfg(p, 4, 2)
			m, err := New(cfg, sharingGen(4, 17))
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(3000)
			if err != nil {
				t.Fatal(err)
			}
			var reads, writes uint64
			for _, c := range res.Ctrl {
				reads += c.DMAReads.Value()
				writes += c.DMAWrites.Value()
			}
			if reads == 0 || writes == 0 {
				t.Fatalf("DMA ops not serviced: %d reads %d writes", reads, writes)
			}
		})
	}
}

// TestDMAWritesInvalidateCaches: after a DMA write, cached copies of the
// block must be gone (checked by the quiescence invariants) and processor
// reads must observe the device's data (checked by the oracle). Heavy
// overlap maximizes the interaction.
func TestDMAWritesInvalidateCaches(t *testing.T) {
	cfg := dmaCfg(TwoBit, 6, 3)
	cfg.CacheSets = 8
	cfg.CacheAssoc = 1
	gen := workload.NewSharedPrivate(workload.SharedPrivateConfig{
		Procs: 6, SharedBlocks: 16, Q: 0.5, W: 0.4,
		PrivateHit: 0.8, PrivateWrite: 0.4, HotBlocks: 8, ColdBlocks: 16, Seed: 21,
	})
	m, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(3000); err != nil {
		t.Fatal(err)
	}
}

// TestDMAUnderJitter combines I/O with the reordering stress.
func TestDMAUnderJitter(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := dmaCfg(TwoBit, 4, 2)
		cfg.NetJitter = 15
		cfg.Seed = seed
		m, err := New(cfg, sharingGen(4, seed*31))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(2000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDMARejectedForUnsupportedProtocols checks the validation.
func TestDMARejectedForUnsupportedProtocols(t *testing.T) {
	for _, p := range []Protocol{Classical, Software, WriteOnce, Duplication} {
		cfg := dmaCfg(p, 4, 1)
		if p == WriteOnce {
			cfg.Net = BusNet
		}
		if p == Duplication {
			cfg.Modules = 1
		}
		if _, err := New(cfg, sharingGen(4, 1)); err == nil {
			t.Errorf("%v accepted DMA devices", p)
		}
	}
	bad := dmaCfg(TwoBit, 4, 1)
	bad.DMA.WriteFrac = 2
	if _, err := New(bad, sharingGen(4, 1)); err == nil {
		t.Error("WriteFrac > 1 accepted")
	}
}

// TestDMAOnlyMachine: devices with no processor traffic still work (pure
// I/O through the coherence controller).
func TestDMAOnlyMachine(t *testing.T) {
	cfg := dmaCfg(TwoBit, 1, 4)
	cfg.DMA.WriteFrac = 0.7
	m, err := New(cfg, sharingGen(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2000); err != nil {
		t.Fatal(err)
	}
}
