#!/bin/sh
# bench.sh — run the sweep-engine throughput benchmark and archive a
# machine-readable baseline in BENCH_sweep.json: complete simulation runs
# per second at workers = 1, 2, 4, 8. The engine's output is
# byte-identical at every width, so the curve is the parallel speedup of
# the experiment-orchestration subsystem.
#
# Each committed BENCH_*.json is snapshotted before the run and diffed
# against the fresh numbers afterwards via cmd/benchdiff: a >10%
# throughput drop or any allocs/op increase fails the script, so a perf
# regression cannot ride a baseline refresh in unnoticed.
#
#   scripts/bench.sh [benchtime]     # default 2x
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
OUT=BENCH_sweep.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Snapshot the committed baselines before anything overwrites them.
PREV="$(mktemp -d)"
trap 'rm -f "$RAW"; rm -rf "$PREV"' EXIT
for f in BENCH_*.json; do
    [ -f "$f" ] && cp "$f" "$PREV/$f"
done

echo "==> go test -bench BenchmarkSweep -benchtime $BENCHTIME -benchmem"
go test -run '^$' -bench '^BenchmarkSweep$' -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Allocation profile of the pooled sweep path: a fixed 10-iteration run
# (enough to amortize first-campaign pool construction) with the heap
# profiler on, reduced to the top-10 alloc_space functions. The pooled
# machine graph promises that per-run component construction is gone;
# the named constructors appearing here again means the pool broke.
PROFDIR="$(mktemp -d)"
trap 'rm -f "$RAW"; rm -rf "$PREV" "$PROFDIR"' EXIT
echo "==> alloc profile: go test -bench BenchmarkSweep/workers=1 -benchtime 10x -memprofile"
go test -run '^$' -bench '^BenchmarkSweep/workers=1$' -benchtime 10x -benchmem \
    -memprofile "$PROFDIR/sweep.prof" -o "$PROFDIR/sweep.test" . > /dev/null
go tool pprof -top -nodecount=10 -sample_index=alloc_space \
    "$PROFDIR/sweep.test" "$PROFDIR/sweep.prof" 2>/dev/null > "$PROFDIR/top.txt"
TOPALLOC="$(awk '/%.*%.*%/ && $1 ~ /B$/ { name = $6; for (i = 7; i <= NF; i++) name = name " " $i; printf "%s %s\n", $2, name }' "$PROFDIR/top.txt")"
if [ -z "$TOPALLOC" ]; then
    echo "bench.sh: no allocators parsed from the sweep profile" >&2
    exit 1
fi
echo "$TOPALLOC"
# Constructors the pooled path must never show at steady state.
for banned in 'cache\.New' 'memory\.NewModule' 'Serializer\)\.admit'; do
    if echo "$TOPALLOC" | grep -Eq "$banned"; then
        echo "bench.sh: pooled-path regression: $banned is back in the top-10 allocators" >&2
        exit 1
    fi
done

awk -v commit="$COMMIT" -v date="$DATE" -v topalloc="$TOPALLOC" '
/^BenchmarkSweep\/workers=/ {
    split($1, parts, "=")
    split(parts[2], w, "-")
    for (i = 2; i <= NF; i++) {
        if ($i == "runs/s") { rate[w[1]] = $(i - 1); order[++n] = w[1] }
        if ($i == "allocs/op") allocs[w[1]] = $(i - 1)
    }
}
END {
    if (n == 0) { print "bench.sh: no runs/s metrics parsed" > "/dev/stderr"; exit 1 }
    if (rate["1"] == "") { print "bench.sh: no workers=1 rate for the efficiency curve" > "/dev/stderr"; exit 1 }
    if (allocs["1"] == "") { print "bench.sh: no allocs/op parsed (benchmem off?)" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmark\": \"BenchmarkSweep\",\n"
    printf "  \"metric\": \"runs_per_second\",\n"
    printf "  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
    printf "  \"workers\": {\n"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": %s%s\n", order[i], rate[order[i]], (i < n ? "," : "")
    }
    printf "  },\n"
    # Parallel efficiency: rate(w) / (w * rate(1)). 1.0 is perfect linear
    # scaling; on a single-CPU machine every multi-worker entry sits near
    # 1/w, and benchdiff only compares it against the same machine.
    printf "  \"efficiency\": {\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        printf "    \"%s\": %.4f%s\n", k, rate[k] / (k * rate["1"]), (i < n ? "," : "")
    }
    printf "  },\n"
    # Allocations per campaign run, per worker width. benchdiff treats
    # the allocs.* grid as lower-is-better with the standard tolerance:
    # scheduler and GC jitter move the count a little, a reintroduced
    # per-run construction multiplies it.
    printf "  \"allocs\": {\n"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": %s%s\n", order[i], allocs[order[i]], (i < n ? "," : "")
    }
    printf "  },\n"
    # Top-10 alloc_space functions of the profiled workers=1 pass —
    # informational strings, invisible to the benchdiff gate.
    nt = split(topalloc, lines, "\n")
    printf "  \"top_allocators\": [\n"
    for (i = 1; i <= nt; i++) {
        gsub(/\\/, "\\\\", lines[i]); gsub(/"/, "\\\"", lines[i])
        printf "    \"%s\"%s\n", lines[i], (i < nt ? "," : "")
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"

# Event-kernel baseline: schedule+drain throughput and allocation count
# for the kernel hot path and the bus broadcast fan-out path. Archived in
# the same invocation as BENCH_sweep.json so both carry the same commit
# stamp and the sweep number can be read against the kernel number that
# produced it.
KERNEL_OUT=BENCH_kernel.json
KERNEL_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$KERNEL_RAW"; rm -rf "$PREV" "$PROFDIR"' EXIT

echo "==> go test -bench BenchmarkKernel|BenchmarkBroadcastFanout -benchmem"
go test -run '^$' -bench '^(BenchmarkKernel|BenchmarkBroadcastFanout)$' -benchmem -benchtime 20000x . | tee "$KERNEL_RAW"

awk -v commit="$COMMIT" -v date="$DATE" '
/^BenchmarkKernel/ {
    for (i = 2; i <= NF; i++) {
        if ($i == "events/s")  kev = $(i - 1)
        if ($i == "allocs/op") kallocs = $(i - 1)
    }
    kseen = 1
}
/^BenchmarkBroadcastFanout\/nodes=/ {
    split($1, parts, "=")
    split(parts[2], w, "-")
    for (i = 2; i <= NF; i++) {
        if ($i == "deliveries/s") { rate[w[1]] = $(i - 1); if (!(w[1] in seen)) { order[++n] = w[1]; seen[w[1]] = 1 } }
        if ($i == "allocs/op")    fallocs[w[1]] = $(i - 1)
    }
}
END {
    if (!kseen || n == 0) { print "bench.sh: kernel benchmarks did not report" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmark\": \"BenchmarkKernel\",\n"
    printf "  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
    printf "  \"kernel\": {\"events_per_second\": %s, \"allocs_per_op\": %s},\n", kev, kallocs
    printf "  \"broadcast_fanout\": {\n"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": {\"deliveries_per_second\": %s, \"allocs_per_op\": %s}%s\n", \
            order[i], rate[order[i]], fallocs[order[i]], (i < n ? "," : "")
    }
    printf "  }\n}\n"
}' "$KERNEL_RAW" > "$KERNEL_OUT"

echo "==> wrote $KERNEL_OUT"
cat "$KERNEL_OUT"

# Observability overhead baseline: ns/op and allocs/op for the
# instrumentation entry points with recording off (the nil-check path
# every simulation pays) and on (the marginal cost of measuring).
OBS_OUT=BENCH_obs.json
OBS_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$KERNEL_RAW" "$OBS_RAW"; rm -rf "$PREV" "$PROFDIR"' EXIT

echo "==> go test -bench BenchmarkObs(Disabled|Enabled) -benchmem"
go test -run '^$' -bench '^BenchmarkObs(Disabled|Enabled)$' -benchmem -benchtime 2000000x . | tee "$OBS_RAW"

awk -v commit="$COMMIT" -v date="$DATE" '
/^BenchmarkObs(Disabled|Enabled)/ {
    name = ($1 ~ /Disabled/) ? "disabled" : "enabled"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns[name] = $(i - 1)
        if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
    seen[name] = 1
}
END {
    if (!seen["disabled"] || !seen["enabled"]) {
        print "bench.sh: obs benchmarks did not both report" > "/dev/stderr"; exit 1
    }
    printf "{\n  \"benchmark\": \"BenchmarkObs\",\n"
    printf "  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
    printf "  \"disabled\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", ns["disabled"], allocs["disabled"]
    printf "  \"enabled\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}\n", ns["enabled"], allocs["enabled"]
    printf "}\n"
}' "$OBS_RAW" > "$OBS_OUT"

echo "==> wrote $OBS_OUT"
cat "$OBS_OUT"

# Transaction-span overhead baseline: ns/op and allocs/op for the span
# hooks with spans off (the nil-check path) and on in matrix-only mode
# (the sweep campaign configuration).
SPANS_OUT=BENCH_spans.json
SPANS_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$KERNEL_RAW" "$OBS_RAW" "$SPANS_RAW"; rm -rf "$PREV" "$PROFDIR"' EXIT

echo "==> go test -bench BenchmarkSpans(Disabled|Enabled) -benchmem"
go test -run '^$' -bench '^BenchmarkSpans(Disabled|Enabled)$' -benchmem -benchtime 2000000x . | tee "$SPANS_RAW"

awk -v commit="$COMMIT" -v date="$DATE" '
/^BenchmarkSpans(Disabled|Enabled)/ {
    name = ($1 ~ /Disabled/) ? "disabled" : "enabled"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns[name] = $(i - 1)
        if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
    seen[name] = 1
}
END {
    if (!seen["disabled"] || !seen["enabled"]) {
        print "bench.sh: spans benchmarks did not both report" > "/dev/stderr"; exit 1
    }
    printf "{\n  \"benchmark\": \"BenchmarkSpans\",\n"
    printf "  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
    printf "  \"disabled\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", ns["disabled"], allocs["disabled"]
    printf "  \"enabled\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}\n", ns["enabled"], allocs["enabled"]
    printf "}\n"
}' "$SPANS_RAW" > "$SPANS_OUT"

echo "==> wrote $SPANS_OUT"
cat "$SPANS_OUT"

# Model-checker baseline: closure rate (canonical states per second) for
# the default two-bit configuration of internal/mcheck. A protocol or
# kernel change that silently halves verification throughput fails the
# gate before it can land.
MCHECK_OUT=BENCH_mcheck.json
MCHECK_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$KERNEL_RAW" "$OBS_RAW" "$SPANS_RAW" "$MCHECK_RAW"; rm -rf "$PREV" "$PROFDIR"' EXIT

echo "==> go test -bench BenchmarkMCheck ./internal/mcheck"
go test -run '^$' -bench '^BenchmarkMCheck$' -benchtime 5x ./internal/mcheck | tee "$MCHECK_RAW"

awk -v commit="$COMMIT" -v date="$DATE" '
/^BenchmarkMCheck/ {
    for (i = 2; i <= NF; i++) {
        if ($i == "states/s") rate = $(i - 1)
    }
    seen = 1
}
END {
    if (!seen || rate == "") { print "bench.sh: mcheck benchmark did not report states/s" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmark\": \"BenchmarkMCheck\",\n"
    printf "  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
    printf "  \"mcheck\": {\"states_per_second\": %s}\n", rate
    printf "}\n"
}' "$MCHECK_RAW" > "$MCHECK_OUT"

echo "==> wrote $MCHECK_OUT"
cat "$MCHECK_OUT"

# Trace-subsystem baseline: scenario-synthesis, chunked-decode and
# machine-replay throughput in references per second, with the streamed
# replay measured against the in-memory replay it must keep up with.
TRACE_OUT=BENCH_trace.json
TRACE_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$KERNEL_RAW" "$OBS_RAW" "$SPANS_RAW" "$MCHECK_RAW" "$TRACE_RAW"; rm -rf "$PREV" "$PROFDIR"' EXIT

echo "==> go test -bench BenchmarkTrace(Synthesize|Decode|Replay)"
go test -run '^$' -bench '^BenchmarkTrace(Synthesize|Decode|Replay)$' -benchtime 10x . | tee "$TRACE_RAW"

awk -v commit="$COMMIT" -v date="$DATE" '
/^BenchmarkTraceSynthesize/ {
    for (i = 2; i <= NF; i++) if ($i == "refs/s") synth = $(i - 1)
}
/^BenchmarkTraceDecode/ {
    for (i = 2; i <= NF; i++) if ($i == "refs/s") decode = $(i - 1)
}
/^BenchmarkTraceReplay\/src=/ {
    split($1, parts, "=")
    split(parts[2], w, "-")
    for (i = 2; i <= NF; i++) if ($i == "refs/s") replay[w[1]] = $(i - 1)
}
END {
    if (synth == "" || decode == "" || replay["memory"] == "" || replay["stream"] == "") {
        print "bench.sh: trace benchmarks did not all report refs/s" > "/dev/stderr"; exit 1
    }
    printf "{\n  \"benchmark\": \"BenchmarkTrace\",\n"
    printf "  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
    printf "  \"trace\": {\n"
    printf "    \"synth_refs_per_second\": %s,\n", synth
    printf "    \"decode_refs_per_second\": %s,\n", decode
    printf "    \"replay_memory_refs_per_second\": %s,\n", replay["memory"]
    printf "    \"replay_stream_refs_per_second\": %s\n", replay["stream"]
    printf "  }\n}\n"
}' "$TRACE_RAW" > "$TRACE_OUT"

echo "==> wrote $TRACE_OUT"
cat "$TRACE_OUT"

# Coherence-observatory baseline: the windowed time-series + contention
# hooks with recording off (the nil-check path every simulation pays)
# and on, the Space-Saving sketch's steady-state update rate, and the
# end-to-end cost of a fully observed machine against an unobserved one.
OBSTS_OUT=BENCH_obsts.json
OBSTS_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$KERNEL_RAW" "$OBS_RAW" "$SPANS_RAW" "$MCHECK_RAW" "$TRACE_RAW" "$OBSTS_RAW"; rm -rf "$PREV" "$PROFDIR"' EXIT

echo "==> go test -bench BenchmarkTimeSeries(Disabled|Enabled)/BenchmarkTopKUpdate -benchmem"
go test -run '^$' -bench '^(BenchmarkTimeSeries(Disabled|Enabled)|BenchmarkTopKUpdate)$' -benchmem -benchtime 2000000x . | tee "$OBSTS_RAW"

echo "==> go test -bench BenchmarkTimeSeriesMachine"
go test -run '^$' -bench '^BenchmarkTimeSeriesMachine$' -benchtime 20x . | tee -a "$OBSTS_RAW"

awk -v commit="$COMMIT" -v date="$DATE" '
/^BenchmarkTimeSeriesDisabled/ {
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns["disabled"] = $(i - 1)
        if ($i == "allocs/op") allocs["disabled"] = $(i - 1)
    }
}
/^BenchmarkTimeSeriesEnabled/ {
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns["enabled"] = $(i - 1)
        if ($i == "allocs/op") allocs["enabled"] = $(i - 1)
    }
}
/^BenchmarkTopKUpdate/ {
    for (i = 2; i <= NF; i++) if ($i == "ns/op") topk = $(i - 1)
}
/^BenchmarkTimeSeriesMachine\/windows=/ {
    split($1, parts, "=")
    split(parts[2], w, "-")
    for (i = 2; i <= NF; i++) if ($i == "ns/op") machine[w[1]] = $(i - 1)
}
END {
    if (ns["disabled"] == "" || ns["enabled"] == "" || topk == "" || machine["off"] == "" || machine["on"] == "") {
        print "bench.sh: time-series benchmarks did not all report" > "/dev/stderr"; exit 1
    }
    overhead = (machine["on"] - machine["off"]) / machine["off"] * 100
    printf "{\n  \"benchmark\": \"BenchmarkTimeSeries\",\n"
    printf "  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
    printf "  \"disabled\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", ns["disabled"], allocs["disabled"]
    printf "  \"enabled\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", ns["enabled"], allocs["enabled"]
    printf "  \"topk\": {\"ns_per_op\": %s},\n", topk
    printf "  \"machine\": {\"off\": {\"ns_per_op\": %s}, \"on\": {\"ns_per_op\": %s}, \"overhead_pct\": %.1f}\n", machine["off"], machine["on"], overhead
    printf "}\n"
}' "$OBSTS_RAW" > "$OBSTS_OUT"

echo "==> wrote $OBSTS_OUT"
cat "$OBSTS_OUT"

# Regression gate: judge every fresh baseline against its committed
# predecessor. A >10% throughput loss or any allocs/op increase fails
# here, before the new numbers can be committed as the baseline.
echo "==> benchdiff against committed baselines"
FAILED=0
for f in BENCH_*.json; do
    if [ -f "$PREV/$f" ]; then
        echo "--- $f"
        go run ./cmd/benchdiff -skip-missing -baseline "$PREV/$f" -fresh "$f" || FAILED=1
    else
        echo "--- $f: no committed baseline, first measurement"
    fi
done
if [ "$FAILED" -ne 0 ]; then
    echo "bench.sh: performance regression against committed baselines" >&2
    exit 1
fi
