package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// referenceStore runs the plan unsharded at workers=1 — the canonical
// bytes every sharded execution must converge to.
func referenceStore(t *testing.T, p *Plan) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	runToFile(t, p, path, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runShardSlice executes one slice of the plan into dir, aborting after
// stopAfter records (stopAfter < 0 runs to completion) — the in-process
// stand-in for a shard process killed mid-campaign.
func runShardSlice(t *testing.T, p *Plan, dir string, slice, of, workers, stopAfter int) {
	t.Helper()
	st, done, err := OpenShardedStore(dir, slice, of, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	killed := fmt.Errorf("kill")
	var mu sync.Mutex
	var sunk int
	err = ExecuteSharded(p, workers,
		func(id int) bool { return id%of == slice && !done[id] },
		func(w int, rec Record) error {
			mu.Lock()
			dead := stopAfter >= 0 && sunk >= stopAfter
			if !dead {
				sunk++
			}
			mu.Unlock()
			if dead {
				return killed
			}
			return st.Sink(w, rec)
		})
	if stopAfter < 0 && err != nil {
		t.Fatal(err)
	}
	if stopAfter >= 0 && err != killed {
		t.Fatalf("kill at %d records did not abort: %v", stopAfter, err)
	}
}

// TestShardMergeMatrix is the sharded-store determinism property: for
// any shard count, any worker width, and any kill point — including a
// torn trailing line in a shard file — resuming every slice to
// completion and merging produces a store byte-identical to the
// unsharded workers=1 store.
func TestShardMergeMatrix(t *testing.T) {
	p := testPlan()
	want := referenceStore(t, p)

	for _, of := range []int{1, 2, 3} {
		for _, kill := range []int{-1, 0, 3} { // -1: clean run; 0/3: killed then resumed
			name := fmt.Sprintf("shards=%d/kill=%d", of, kill)
			t.Run(name, func(t *testing.T) {
				dir := filepath.Join(t.TempDir(), "shards")
				for slice := 0; slice < of; slice++ {
					if kill >= 0 {
						// First attempt dies after `kill` records …
						runShardSlice(t, p, dir, slice, of, 2, kill)
						// … possibly mid-append: tear a line onto one of
						// its shard files.
						if kill > 0 {
							tearShardFile(t, dir)
						}
					}
					// The resumed (or only) attempt completes the slice.
					runShardSlice(t, p, dir, slice, of, 2, -1)
				}
				out := filepath.Join(t.TempDir(), "merged.jsonl")
				if err := WriteMergedStore(p, dir, out); err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(out)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("merged store differs from unsharded workers=1 store:\n--- merged ---\n%s\n--- want ---\n%s", got, want)
				}
			})
		}
	}
}

// tearShardFile appends half a record to some shard file in dir — the
// bytes a kill during a synced append leaves behind.
func tearShardFile(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !shardNameRE.MatchString(e.Name()) {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, e.Name()), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"run_id":99,"protoc`); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return
	}
	// No shard file yet (kill before any record): nothing to tear.
}

// TestShardedWorkerWidthInvariance: the merged bytes do not depend on
// how many workers each shard process ran — width changes which worker
// file a record lands in, never its contents or its merged position.
func TestShardedWorkerWidthInvariance(t *testing.T) {
	p := testPlan()
	want := referenceStore(t, p)
	for _, workers := range []int{1, 2, 4, 8} {
		dir := filepath.Join(t.TempDir(), "shards")
		for slice := 0; slice < 2; slice++ {
			runShardSlice(t, p, dir, slice, 2, workers, -1)
		}
		out := filepath.Join(t.TempDir(), "merged.jsonl")
		if err := WriteMergedStore(p, dir, out); err != nil {
			t.Fatal(err)
		}
		got, _ := os.ReadFile(out)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: merged store differs from reference", workers)
		}
	}
}

// TestShardedStoreRejectsMixedWidths: one directory cannot mix
// partitions of different shard counts — run ids would double-execute.
func TestShardedStoreRejectsMixedWidths(t *testing.T) {
	p := testPlan()
	dir := filepath.Join(t.TempDir(), "shards")
	runShardSlice(t, p, dir, 0, 2, 1, -1)
	if _, _, err := OpenShardedStore(dir, 0, 3, 1); err == nil {
		t.Fatal("a 3-way shard opened a directory holding 2-way shard files")
	}
}

// TestShardedStoreRejectsDuplicates: a run id appearing in two shard
// files (a mis-copied directory, overlapping slices) must be refused at
// open and at merge.
func TestShardedStoreRejectsDuplicates(t *testing.T) {
	p := testPlan()
	dir := filepath.Join(t.TempDir(), "shards")
	runShardSlice(t, p, dir, 0, 2, 1, -1)
	src, err := os.ReadFile(filepath.Join(dir, shardFileName(0, 2, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	// A second generation re-containing the same runs.
	dup := filepath.Join(dir, shardFileName(0, 2, 1, 0))
	if err := os.WriteFile(dup, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShardedStore(dir, 0, 2, 1); err == nil {
		t.Error("OpenShardedStore accepted a directory holding a run twice")
	}
	if _, err := MergeShards(dir, mustCreate(t)); err == nil {
		t.Error("MergeShards accepted a directory holding a run twice")
	}
}

func mustCreate(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestMergeRejectsIncompleteShards: -merge on a directory missing a
// slice (a shard process that never ran) must refuse to write a
// canonical store rather than produce one with holes.
func TestMergeRejectsIncompleteShards(t *testing.T) {
	p := testPlan()
	dir := filepath.Join(t.TempDir(), "shards")
	runShardSlice(t, p, dir, 0, 2, 2, -1) // slice 1 never runs
	out := filepath.Join(t.TempDir(), "merged.jsonl")
	if err := WriteMergedStore(p, dir, out); err == nil {
		t.Fatal("WriteMergedStore accepted a shard directory missing half the campaign")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("a failed merge left a store file behind")
	}
}

// TestReadShardRecords: aggregation can read a sharded campaign
// directly, in run-id order, without writing the canonical store first.
func TestReadShardRecords(t *testing.T) {
	p := testPlan()
	dir := filepath.Join(t.TempDir(), "shards")
	for slice := 0; slice < 3; slice++ {
		runShardSlice(t, p, dir, slice, 3, 2, -1)
	}
	recs, err := ReadShardRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != p.Size() {
		t.Fatalf("read %d records, want %d", len(recs), p.Size())
	}
	for i, r := range recs {
		if r.RunID != i {
			t.Fatalf("record %d carries run id %d", i, r.RunID)
		}
	}
	if err := CheckPrefix(p, recs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Aggregate(p, recs, "useless_per_ref"); err != nil {
		t.Fatalf("aggregating shard records: %v", err)
	}
}
