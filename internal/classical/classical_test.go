package classical

import (
	"testing"

	"twobit/internal/addr"
	"twobit/internal/cache"
	"twobit/internal/memory"
	"twobit/internal/network"
	"twobit/internal/proto"
	"twobit/internal/sim"
)

type rig struct {
	kernel  *sim.Kernel
	ctrl    *Controller
	agents  []*Agent
	nextV   uint64
	commits map[addr.Block]uint64
}

func newRig(t *testing.T, n int, bias bool) *rig {
	t.Helper()
	r := &rig{kernel: &sim.Kernel{}, commits: make(map[addr.Block]uint64)}
	net := network.NewCrossbar(r.kernel, 1)
	topo := proto.Topology{Caches: n, Modules: 1}
	space := addr.Space{Blocks: 64, Modules: 1}
	lat := proto.Latencies{CacheHit: 1, Memory: 5, CtrlService: 1}
	mem := memory.NewModule(space, 0, lat.Memory)
	r.ctrl = New(Config{
		Module: 0, Topo: topo, Space: space, Lat: lat,
		Commit: func(b addr.Block, v uint64) { r.commits[b] = v },
	}, r.kernel, net, mem)
	for k := 0; k < n; k++ {
		store := cache.New(cache.Config{Sets: 8, Assoc: 2})
		r.agents = append(r.agents, NewAgent(AgentConfig{
			Index: k, Topo: topo, Lat: lat, BiasFilter: bias,
		}, r.kernel, net, store))
	}
	return r
}

func (r *rig) do(t *testing.T, k int, block addr.Block, write bool) uint64 {
	t.Helper()
	var version uint64
	if write {
		r.nextV++
		version = r.nextV
	}
	var got uint64
	completed := false
	r.agents[k].Access(addr.Ref{Block: block, Write: write}, version, func(v uint64) {
		got = v
		completed = true
	})
	r.kernel.Run()
	if !completed {
		t.Fatalf("cache %d: reference to %v did not complete", k, block)
	}
	return got
}

func TestWriteThroughUpdatesMemoryImmediately(t *testing.T) {
	r := newRig(t, 2, false)
	v := r.do(t, 0, 3, true)
	if r.ctrl.MemVersion(3) != v {
		t.Fatalf("memory = v%d after write-through, want v%d", r.ctrl.MemVersion(3), v)
	}
	if r.commits[3] != v {
		t.Fatal("commit hook not invoked at the controller")
	}
	if !r.ctrl.Quiescent() {
		t.Fatal("controller not quiescent")
	}
}

func TestBroadcastInvalidationOnEveryWrite(t *testing.T) {
	r := newRig(t, 4, false)
	r.do(t, 1, 3, false) // cache 1 loads a copy
	r.do(t, 2, 3, false) // cache 2 too
	v := r.do(t, 0, 3, true)
	if r.agents[1].Store().Lookup(3) != nil || r.agents[2].Store().Lookup(3) != nil {
		t.Fatal("copies survived the broadcast invalidation")
	}
	if got := r.do(t, 1, 3, false); got != v {
		t.Fatalf("re-read observed v%d, want v%d", got, v)
	}
	if r.ctrl.CtrlStats().Broadcasts.Value() != 1 {
		t.Fatalf("broadcasts = %d, want 1", r.ctrl.CtrlStats().Broadcasts.Value())
	}
}

func TestFramesNeverDirty(t *testing.T) {
	r := newRig(t, 2, false)
	r.do(t, 0, 3, false)
	r.do(t, 0, 3, true) // write hit: update copy, write through
	f := r.agents[0].Store().Lookup(3)
	if f == nil {
		t.Fatal("write hit dropped the copy")
	}
	if f.Modified {
		t.Fatal("write-through cache holds a dirty frame")
	}
	if f.Data != r.nextV {
		t.Fatalf("copy holds v%d, want the written v%d", f.Data, r.nextV)
	}
}

func TestNoWriteAllocate(t *testing.T) {
	r := newRig(t, 2, false)
	r.do(t, 0, 9, true) // write miss: no fill
	if r.agents[0].Store().Lookup(9) != nil {
		t.Fatal("write miss allocated a frame")
	}
}

func TestWritesToSameBlockSerialize(t *testing.T) {
	r := newRig(t, 3, false)
	var done0, done1 bool
	r.nextV++
	v0 := r.nextV
	r.agents[0].Access(addr.Ref{Block: 5, Write: true}, v0, func(uint64) { done0 = true })
	r.nextV++
	v1 := r.nextV
	r.agents[1].Access(addr.Ref{Block: 5, Write: true}, v1, func(uint64) { done1 = true })
	r.kernel.Run()
	if !done0 || !done1 {
		t.Fatal("racing writes did not both complete")
	}
	// The later-arriving write wins; memory must hold one of them and the
	// commit order must match memory.
	if mv := r.ctrl.MemVersion(5); mv != r.commits[5] {
		t.Fatalf("memory v%d disagrees with last commit v%d", mv, r.commits[5])
	}
}

func TestReadQueuedBehindPendingWrite(t *testing.T) {
	r := newRig(t, 3, false)
	r.nextV++
	v := r.nextV
	var wrote, read bool
	var got uint64
	r.agents[0].Access(addr.Ref{Block: 5, Write: true}, v, func(uint64) { wrote = true })
	r.agents[1].Access(addr.Ref{Block: 5}, 0, func(g uint64) { read = true; got = g })
	r.kernel.Run()
	if !wrote || !read {
		t.Fatal("references incomplete")
	}
	// If the read reached the controller after the write-through, it must
	// see the new version (never install a stale copy that escaped the
	// invalidation round).
	if got != 0 && got != v {
		t.Fatalf("read observed v%d, want v0 (before) or v%d (after)", got, v)
	}
	if f := r.agents[1].Store().Lookup(5); f != nil && f.Data != r.ctrl.MemVersion(5) {
		t.Fatalf("installed copy v%d diverges from memory v%d", f.Data, r.ctrl.MemVersion(5))
	}
}

func TestBiasFilterSkipsRepeatedInvalidations(t *testing.T) {
	run := func(bias bool) (stolen, filtered uint64) {
		r := newRig(t, 2, bias)
		// Cache 1 never holds block 5; cache 0 writes it repeatedly, so
		// cache 1 receives the same invalidation again and again.
		for i := 0; i < 10; i++ {
			r.do(t, 0, 5, true)
		}
		return r.agents[1].Store().Stats().StolenCycles.Value(), r.agents[1].Filtered
	}
	stolenPlain, filteredPlain := run(false)
	stolenBias, filteredBias := run(true)
	if filteredPlain != 0 {
		t.Fatalf("filter fired while disabled: %d", filteredPlain)
	}
	if filteredBias < 9 {
		t.Fatalf("BIAS filtered only %d of 9 repeats", filteredBias)
	}
	if stolenBias >= stolenPlain {
		t.Fatalf("BIAS did not reduce stolen cycles: %d vs %d", stolenBias, stolenPlain)
	}
}

func TestSingleProcessorWriteCompletesWithoutAcks(t *testing.T) {
	r := newRig(t, 1, false)
	v := r.do(t, 0, 2, true)
	if r.ctrl.MemVersion(2) != v {
		t.Fatal("single-processor write did not complete")
	}
}
