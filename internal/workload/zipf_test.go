package workload

import (
	"math"
	"sort"
	"testing"

	"twobit/internal/rng"
)

func zipfCfg(skew float64) ZipfSharedConfig {
	return ZipfSharedConfig{
		Procs: 4, SharedBlocks: 16, Skew: skew, Q: 0.5, W: 0.3,
		PrivateHit: 0.9, PrivateWrite: 0.3, HotBlocks: 8, ColdBlocks: 16, Seed: 3,
	}
}

func TestZipfValidate(t *testing.T) {
	if err := zipfCfg(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := zipfCfg(-1)
	if err := bad.Validate(); err == nil {
		t.Error("negative skew accepted")
	}
	bad = zipfCfg(math.Inf(1))
	if err := bad.Validate(); err == nil {
		t.Error("infinite skew accepted")
	}
	bad = zipfCfg(1)
	bad.Procs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestZipfSkewConcentratesSharing(t *testing.T) {
	counts := func(skew float64) []int {
		g := NewZipfShared(zipfCfg(skew))
		c := make([]int, 16)
		for i := 0; i < 100000; i++ {
			if r := g.Next(i % 4); r.Shared {
				c[int(r.Block)]++
			}
		}
		return c
	}
	uniform := counts(0)
	skewed := counts(1.5)
	// Uniform: block 0 gets ~1/16 of shared refs; skewed: far more.
	totalU, totalS := 0, 0
	for i := range uniform {
		totalU += uniform[i]
		totalS += skewed[i]
	}
	fracU := float64(uniform[0]) / float64(totalU)
	fracS := float64(skewed[0]) / float64(totalS)
	if math.Abs(fracU-1.0/16) > 0.01 {
		t.Fatalf("skew=0 block-0 share = %v, want ≈ 1/16", fracU)
	}
	if fracS < 3*fracU {
		t.Fatalf("skew=1.5 block-0 share %v not concentrated vs uniform %v", fracS, fracU)
	}
	// Monotone decreasing popularity under skew (allowing sampling noise
	// between neighbors far down the tail).
	if !(skewed[0] > skewed[3] && skewed[3] > skewed[15]) {
		t.Fatalf("skewed counts not decreasing: %v", skewed)
	}
}

func TestZipfBlocksBound(t *testing.T) {
	g := NewZipfShared(zipfCfg(1))
	max := g.Blocks()
	for i := 0; i < 50000; i++ {
		if r := g.Next(i % 4); int(r.Block) >= max {
			t.Fatalf("ref %v beyond Blocks() = %d", r.Block, max)
		}
	}
}

func TestZipfDeterminism(t *testing.T) {
	a := NewZipfShared(zipfCfg(1))
	b := NewZipfShared(zipfCfg(1))
	for i := 0; i < 1000; i++ {
		if a.Next(i%4) != b.Next(i%4) {
			t.Fatal("same seed diverged")
		}
	}
}

// fitLogLogSlope regresses ln(count) on ln(rank+1) over the given counts
// (rank 0 first) and returns the least-squares slope. A perfect Zipf(s)
// sample fits slope -s.
func fitLogLogSlope(counts []uint64) float64 {
	var n float64
	var sx, sy, sxx, sxy float64
	for r, c := range counts {
		if c == 0 {
			continue
		}
		x := math.Log(float64(r + 1))
		y := math.Log(float64(c))
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// TestZipfRanksSlope checks the statistical contract of the sampler: the
// observed rank-frequency curve of a large sample has log-log slope ≈ -s
// for every configured skew, across seeds.
func TestZipfRanksSlope(t *testing.T) {
	const ranks, draws, fitTop = 1024, 200000, 64
	for _, s := range []float64{0.6, 1.0, 1.4} {
		z := NewZipfRanks(ranks, s)
		for _, seed := range []uint64{1, 2, 3} {
			r := rng.New(seed, 99)
			counts := make([]uint64, ranks)
			for i := 0; i < draws; i++ {
				counts[z.Rank(r.Float64())]++
			}
			// The head ranks carry enough samples for a stable fit; the
			// deep tail is sampling noise.
			slope := fitLogLogSlope(counts[:fitTop])
			if math.Abs(slope+s) > 0.12 {
				t.Errorf("skew=%.1f seed=%d: fitted slope %.3f, want ≈ %.3f", s, seed, slope, -s)
			}
		}
	}
}

// TestZipfRanksDistribution pins the analytic side: P sums to 1 and
// matches the CDF's increments, and Rank inverts the CDF at bucket
// boundaries.
func TestZipfRanksDistribution(t *testing.T) {
	z := NewZipfRanks(64, 1.2)
	sum := 0.0
	for r := 0; r < z.N(); r++ {
		p := z.P(r)
		if p <= 0 {
			t.Fatalf("P(%d) = %v not positive", r, p)
		}
		if r > 0 && z.P(r) > z.P(r-1)+1e-12 {
			t.Fatalf("P not non-increasing at rank %d", r)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ΣP = %v, want 1", sum)
	}
	if z.P(-1) != 0 || z.P(z.N()) != 0 {
		t.Fatal("P outside [0,N) must be 0")
	}
	if z.Rank(0) != 0 {
		t.Fatalf("Rank(0) = %d, want 0", z.Rank(0))
	}
	if got := z.Rank(math.Nextafter(1, 0)); got != z.N()-1 {
		t.Fatalf("Rank(1-ε) = %d, want %d", got, z.N()-1)
	}
}

// TestZipfSharedSlope runs the same rank-frequency check through the
// full ZipfShared generator's shared stream, so the slope property holds
// where the simulator consumes it, not just in the sampler.
func TestZipfSharedSlope(t *testing.T) {
	for _, s := range []float64{0.8, 1.2} {
		for _, seed := range []uint64{5, 17} {
			cfg := zipfCfg(s)
			cfg.SharedBlocks = 256
			cfg.Seed = seed
			g := NewZipfShared(cfg)
			counts := make([]uint64, cfg.SharedBlocks)
			for i := 0; i < 400000; i++ {
				if r := g.Next(i % cfg.Procs); r.Shared {
					counts[int(r.Block)]++
				}
			}
			// The generator maps rank i to block i, so block order is rank
			// order; sort defensively anyway to fit pure rank-frequency.
			sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
			slope := fitLogLogSlope(counts[:32])
			if math.Abs(slope+s) > 0.15 {
				t.Errorf("skew=%.1f seed=%d: shared-stream slope %.3f, want ≈ %.3f", s, seed, slope, -s)
			}
		}
	}
}

func TestZipfPrivateRegionsDisjointFromShared(t *testing.T) {
	g := NewZipfShared(zipfCfg(1))
	for i := 0; i < 20000; i++ {
		r := g.Next(i % 4)
		if r.Shared && int(r.Block) >= 16 {
			t.Fatalf("shared ref outside pool: %v", r.Block)
		}
		if !r.Shared && int(r.Block) < 16 {
			t.Fatalf("private ref inside shared pool: %v", r.Block)
		}
	}
}
