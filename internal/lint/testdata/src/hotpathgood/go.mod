module hotpathgood

go 1.22
