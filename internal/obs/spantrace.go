package obs

import (
	"bufio"
	"fmt"
	"io"
)

// SpanFilter selects which finished spans WriteSpanTrace exports. The
// zero SpanFilter keeps everything; Txn's no-filter value is -1 (the
// zero value would otherwise hide transaction 0), so construct filters
// with NewSpanFilter or set Txn explicitly.
type SpanFilter struct {
	// Txn keeps only the span with this transaction id; -1 keeps all.
	Txn int64
	// Class keeps only spans of this reference class name ("read_miss",
	// ...); empty keeps all.
	Class string
	// HasBlock/Block keep only spans touching this block address.
	HasBlock bool
	Block    int64
}

// NewSpanFilter returns the keep-everything filter.
func NewSpanFilter() SpanFilter {
	return SpanFilter{Txn: -1}
}

func (f SpanFilter) keep(s SpanData) bool {
	if f.Txn >= 0 && uint64(f.Txn) != s.Txn {
		return false
	}
	if f.Class != "" && s.Class.String() != f.Class {
		return false
	}
	if f.HasBlock && s.Block != f.Block {
		return false
	}
	return true
}

// WriteSpanTrace exports the retained transaction spans matching f as
// flame-style Chrome trace_event JSON. Each cache gets a track ("txn
// cache<k>", pid 1, tids above the event-trace range so the two exports
// can be merged by hand); each span becomes a parent "X" complete event
// named by its class, its phase segments child "X" events that tile the
// parent exactly, and consecutive segments are linked by "s"/"t"/"f"
// flow events with the transaction id, so the viewer draws the causal
// chain issue → ... → retire. Fixed formatting, span order and segment
// order are all deterministic, so identical recordings export to
// identical bytes — the property the golden spans trace pins.
func WriteSpanTrace(w io.Writer, sp *SpanRecorder, f SpanFilter) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}

	first := true
	sep := func() string {
		if first {
			first = false
			return ""
		}
		return ",\n"
	}

	// Track metadata: one track per cache that owns a kept span. Tids
	// start at spanTidBase to stay clear of the event-trace tids
	// (component index + 1).
	const spanTidBase = 1000
	maxCache := -1
	for _, s := range sp.Finished() {
		if f.keep(s) && s.Cache > maxCache {
			maxCache = s.Cache
		}
	}
	seen := make([]bool, maxCache+1)
	for _, s := range sp.Finished() {
		if f.keep(s) {
			seen[s.Cache] = true
		}
	}
	for k, ok := range seen {
		if !ok {
			continue
		}
		tid := spanTidBase + k
		fmt.Fprintf(bw, "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"txn cache%d\"}}", sep(), tid, k)
		fmt.Fprintf(bw, "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}", sep(), tid, tid)
	}

	for _, s := range sp.Finished() {
		if !f.keep(s) {
			continue
		}
		tid := spanTidBase + s.Cache
		// Parent: the whole reference, named by class. A zero-duration
		// reference (impossible today: retirement costs ≥ 1 cycle) would
		// still render as a dur-0 slice.
		fmt.Fprintf(bw, "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%q,\"args\":{\"txn\":%d,\"block\":%d}}",
			sep(), tid, s.Start, s.End-s.Start, s.Class.String(), s.Txn, s.Block)
		for i, seg := range s.Segs {
			// Child: one phase segment. Chrome nests same-track "X"
			// events by [ts, ts+dur) containment.
			fmt.Fprintf(bw, "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%q,\"args\":{\"txn\":%d}}",
				sep(), tid, seg.From, seg.To-seg.From, seg.Phase.String(), s.Txn)
			// Flow: chain the segments so the viewer draws the causal
			// arrows issue → ... → retire under id = txn. A single-
			// segment span (a plain hit) has no chain to draw.
			if len(s.Segs) < 2 {
				continue
			}
			ph := "t"
			if i == 0 {
				ph = "s"
			} else if i == len(s.Segs)-1 {
				ph = "f"
			}
			bp := ""
			if ph == "f" {
				bp = ",\"bp\":\"e\""
			}
			fmt.Fprintf(bw, "%s{\"ph\":%q,\"pid\":1,\"tid\":%d,\"ts\":%d,\"cat\":\"txnflow\",\"id\":%d,\"name\":\"txn\"%s}",
				sep(), ph, tid, seg.From, s.Txn, bp)
		}
	}

	if sp.Truncated() > 0 {
		fmt.Fprintf(bw, "%s{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"span retention full: %d newest spans dropped\"}",
			sep(), sp.Truncated())
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
