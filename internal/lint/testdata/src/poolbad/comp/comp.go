// Package comp is a stand-in machine-component package: its exported
// New* constructors are what the pooled-construction analyzer forbids
// orchestrators from calling.
package comp

// Cache is a pooled component.
type Cache struct{ sets int }

// New constructs a Cache.
func New(sets int) *Cache { return &Cache{sets: sets} }

// Reset reuses the cache for another run.
func (c *Cache) Reset(sets int) { c.sets = sets }

// Module is a second component, to pin multiple findings.
type Module struct{}

// NewModule constructs a Module.
func NewModule() *Module { return &Module{} }

// Pool owns the component graph; its constructor is the sanctioned
// entry point (cfg.AllowedConstructors).
type Pool struct{ c *Cache }

// NewPool builds the graph once.
func NewPool() *Pool { return &Pool{c: New(4)} }

// Run resets and executes one run.
func (p *Pool) Run() { p.c.Reset(4) }

// Newt shares the New prefix but continues lowercase: an ordinary word,
// not a constructor, so orchestrators may call it freely.
func Newt() {}
