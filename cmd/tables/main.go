// Command tables regenerates the paper's evaluation tables.
//
//	tables -table 4.1           # Table 4-1 from the §4.2 closed form
//	tables -table 4.2           # Table 4-2 from the Dubois–Briggs reconstruction
//	tables -table all -compare  # both, with the paper's printed values inline
package main

import (
	"flag"
	"fmt"
	"os"

	"twobit"
)

func main() {
	table := flag.String("table", "all", "which table to print: 4.1, 4.2 or all")
	compare := flag.Bool("compare", false, "print computed values side by side with the paper's")
	cost := flag.Bool("cost", false, "also print the directory hardware-economy comparison (§2.4.2/§3.1)")
	viability := flag.Bool("viability", false, "also print the §4.3 viability boundaries")
	flag.Parse()

	if *cost {
		printCost()
		fmt.Println()
	}
	if *viability {
		printViability()
		fmt.Println()
	}

	switch *table {
	case "4.1":
		print41(*compare)
	case "4.2":
		print42(*compare)
	case "all":
		print41(*compare)
		fmt.Println()
		print42(*compare)
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %q (want 4.1, 4.2 or all)\n", *table)
		os.Exit(2)
	}
}

func printCost() {
	fmt.Println("Directory storage per block (16-byte blocks), full map vs two-bit:")
	fmt.Printf("%-6s %14s %12s %14s %12s %10s\n",
		"n", "full-map bits", "overhead", "two-bit bits", "overhead", "savings")
	for _, r := range twobit.CostTable(16) {
		fmt.Printf("%-6d %14d %11.1f%% %14d %11.2f%% %9.1fx\n",
			r.Procs, r.FullMapBits, r.FullMapOverhead*100,
			r.TwoBitBits, r.TwoBitOverhead*100, r.SavingsFactor)
	}
	fmt.Println("(§2.4.2's example: 16 procs, 17 bits per 128-bit block = 13.3%,")
	fmt.Println(`"almost 15% extra memory"; the paper's "256 bits" is a misprint.)`)
}

func printViability() {
	fmt.Println("§4.3 viability boundaries: largest n with (n-1)·T_SUM < 1.0:")
	for _, c := range []twobit.SharingCase{twobit.LowSharing, twobit.ModerateSharing, twobit.HighSharing} {
		fmt.Printf("  %-10s", c.Name+":")
		for _, w := range []float64{0.1, 0.2, 0.3, 0.4} {
			fmt.Printf("  w=%.1f → n≤%-3d", w, twobit.MaxViableProcessors(c, w, 1.0))
		}
		fmt.Println()
	}
}

func print41(compare bool) {
	if compare {
		fmt.Print(twobit.CompareTable41())
		fmt.Println("\nKnown defects of the original: the case-1 w=0.3 n=16 cell is")
		fmt.Println("misprinted 0.970 (formula gives 0.070), and case-1 w=0.1 n=4")
		fmt.Println("rounds to 0.001 but is printed 0.000.")
		return
	}
	fmt.Print(twobit.RenderTable41())
}

func print42(compare bool) {
	if compare {
		fmt.Print(twobit.CompareTable42())
		fmt.Println("\nTable 4-2 is a reconstruction: the paper uses the Dubois–Briggs")
		fmt.Println("model [3] whose closed form it does not reproduce; a Markov chain")
		fmt.Println("over one shared block's global state substitutes (see DESIGN.md).")
		return
	}
	fmt.Print(twobit.RenderTable42())
}
