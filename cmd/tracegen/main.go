// Command tracegen synthesizes, inspects and converts memory-reference
// traces at serving scale.
//
// Scenarios are declarative: a preset name (or a JSON spec overlaying
// one) plus a seed fully determines every reference, and synthesis
// streams straight to the chunked trace format — a 100M-reference trace
// costs O(chunk) memory to write and to replay.
//
//	tracegen list                                # built-in scenarios
//	tracegen synth -scenario kv-serving -refs 1000000 -o kv.mtrc2
//	tracegen synth -spec custom.json -refs 500000 -procs 16 -o c.mtrc2
//	tracegen inspect kv.mtrc2                    # streaming stats, no RAM
//	tracegen convert old.trace new.mtrc2 -format chunked
//
// The simulator consumes the output directly:
//
//	coherencesim -trace kv.mtrc2 -protocol two-bit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"twobit/internal/addr"
	"twobit/internal/memtrace"
	"twobit/internal/tracegen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		runList()
	case "synth":
		runSynth(os.Args[2:])
	case "inspect":
		runInspect(os.Args[2:])
	case "convert":
		runConvert(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tracegen list                          list built-in scenarios
  tracegen synth [flags] -o <file>       synthesize a scenario to a chunked trace
  tracegen inspect <file> [flags]        streaming statistics for any trace file
  tracegen convert <in> <out> [flags]    convert between trace formats
`)
}

func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "tracegen:") {
		msg = "tracegen: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}

func runList() {
	fmt.Printf("%-14s %8s %10s %6s %8s %s\n", "scenario", "procs", "keys", "skew", "shared", "features")
	for _, s := range tracegen.Presets() {
		features := ""
		add := func(f string) {
			if features != "" {
				features += ","
			}
			features += f
		}
		if s.DiurnalPeriod > 0 {
			add("diurnal")
		}
		if s.FlashEvery > 0 {
			add("flash")
		}
		if s.ChurnEvery > 0 {
			add("churn")
		}
		if s.FalseShareFrac > 0 {
			add("false-sharing")
		}
		if features == "" {
			features = "-"
		}
		fmt.Printf("%-14s %8d %10d %6.2f %8.2f %s\n", s.Name, s.Procs, s.Keys, s.Skew, s.SharedFrac, features)
	}
}

// loadSpec builds the scenario spec from -scenario / -spec plus flag
// overrides.
func loadSpec(scenario, specFile string, procs int, seed uint64) (tracegen.Spec, error) {
	var spec tracegen.Spec
	switch {
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return spec, fmt.Errorf("parsing %s: %w", specFile, err)
		}
	case scenario != "":
		// Resolve falls through silently on unknown names; surface the
		// preset error here instead of a confusing zero-field complaint.
		if _, err := tracegen.Preset(scenario); err != nil {
			return spec, err
		}
		spec.Name = scenario
	default:
		return spec, fmt.Errorf("need -scenario <name> or -spec <file> (see `tracegen list`)")
	}
	spec = tracegen.Resolve(spec)
	if procs > 0 {
		spec.Procs = procs
	}
	if seed > 0 {
		spec.Seed = seed
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

func runSynth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	var (
		scenario = fs.String("scenario", "", "built-in scenario name (see `tracegen list`)")
		specFile = fs.String("spec", "", "JSON scenario spec (overlays the preset named in its \"name\" field)")
		refs     = fs.Int("refs", 100000, "references per processor")
		procs    = fs.Int("procs", 0, "override the scenario's processor count")
		seed     = fs.Uint64("seed", 0, "override the scenario's seed")
		chunkCap = fs.Int("chunk", 0, "references per chunk (0 = default)")
		out      = fs.String("o", "", "output file (required unless -cache-dir)")
		cacheDir = fs.String("cache-dir", "", "segment cache directory: reuse the cached segment for this spec if present, else synthesize into the cache (always default-chunked); -o optionally receives a copy")
		quiet    = fs.Bool("quiet", false, "suppress the statistics summary")
	)
	fs.Parse(args)
	if *out == "" && *cacheDir == "" {
		fatal(fmt.Errorf("synth needs -o <file> or -cache-dir <dir>"))
	}
	spec, err := loadSpec(*scenario, *specFile, *procs, *seed)
	if err != nil {
		fatal(err)
	}
	if *cacheDir != "" {
		path, hit, err := tracegen.EnsureSegment(*cacheDir, spec, *refs)
		if err != nil {
			fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			fatal(err)
		}
		verb := "synthesized into cache"
		if hit {
			verb = "cache hit"
		}
		fmt.Printf("%s: %s: %d procs × %d refs (%d bytes)\n", verb, path, spec.Procs, *refs, fi.Size())
		if *out != "" {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("copied to %s\n", *out)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	st := tracegen.NewStreamStats(spec.Procs, 0)
	if err := tracegen.Synthesize(f, spec, *refs, *chunkCap, st); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synthesized %s: %d procs × %d refs → %s (%d bytes, %.2f bits/ref)\n",
		spec.Name, spec.Procs, *refs, *out, fi.Size(),
		8*float64(fi.Size())/float64(st.Total()))
	if !*quiet {
		printStats(st, 8)
	}
}

func printStats(st *tracegen.StreamStats, topN int) {
	fmt.Printf("  blocks %d, write frac %.3f, shared frac %.3f, zipf slope %.2f\n",
		st.Blocks(), st.WriteFrac(), st.SharedFrac(), st.ZipfSlope())
	top := st.TopKeys()
	if len(top) > topN {
		top = top[:topN]
	}
	for i, kc := range top {
		fmt.Printf("  hot[%d] block %d ≈ %d refs (±%d)\n", i, kc.Block, kc.Count, kc.Err)
	}
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	var (
		top     = fs.Int("top", 8, "hot keys to print")
		jsonOut = fs.Bool("json", false, "emit statistics as JSON")
	)
	// Accept `tracegen inspect file -top 4` and `tracegen inspect -top 4 file`.
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		fs.Parse(args[1:])
		args = args[:1]
	} else {
		fs.Parse(args)
		args = fs.Args()
	}
	if len(args) != 1 {
		fatal(fmt.Errorf("inspect needs exactly one trace file"))
	}
	path := args[0]

	format, st, err := inspectFile(path, *top)
	if err != nil {
		fatal(err)
	}
	topKeys := st.TopKeys()
	if len(topKeys) > *top {
		topKeys = topKeys[:*top]
	}
	if *jsonOut {
		out := struct {
			Format     string              `json:"format"`
			Procs      int                 `json:"procs"`
			Refs       int64               `json:"refs"`
			PerProc    []int64             `json:"refs_per_proc"`
			Blocks     int                 `json:"blocks"`
			WriteFrac  float64             `json:"write_frac"`
			SharedFrac float64             `json:"shared_frac"`
			ZipfSlope  float64             `json:"zipf_slope"`
			TopKeys    []tracegen.KeyCount `json:"top_keys"`
		}{
			Format: format, Procs: len(st.PerProc()), Refs: st.Total(),
			PerProc: st.PerProc(), Blocks: st.Blocks(),
			WriteFrac: st.WriteFrac(), SharedFrac: st.SharedFrac(),
			ZipfSlope: st.ZipfSlope(), TopKeys: topKeys,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s: %s format, %d procs, %d refs\n", path, format, len(st.PerProc()), st.Total())
	printStats(st, *top)
}

// inspectFile accumulates statistics over a trace file. Chunked traces
// are scanned streaming — a 100M-reference file never materializes.
func inspectFile(path string, topK int) (string, *tracegen.StreamStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	format, err := sniff(f)
	if err != nil {
		return "", nil, err
	}
	// The sketch needs headroom beyond the printed rows or its estimates
	// degrade; -top only limits the report.
	if topK < tracegen.DefaultTopK {
		topK = tracegen.DefaultTopK
	}
	if format == "chunked" {
		st := tracegen.NewStreamStats(1, topK)
		procs, err := memtrace.ScanChunked(f, func(proc int, refs []addr.Ref) error {
			st.EnsureProcs(proc + 1)
			for _, r := range refs {
				st.Observe(proc, r)
			}
			return nil
		})
		if err != nil {
			return "", nil, err
		}
		st.EnsureProcs(procs)
		return format, st, nil
	}
	tr, err := readAll(f, format)
	if err != nil {
		return "", nil, err
	}
	st := tracegen.NewStreamStats(tr.Procs(), topK)
	g := tr.Generator()
	for p := 0; p < tr.Procs(); p++ {
		for i := 0; i < tr.Len(p); i++ {
			st.Observe(p, g.Next(p))
		}
	}
	return format, st, nil
}

// sniff identifies the trace format and rewinds the file.
func sniff(f *os.File) (string, error) {
	var magic [6]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF {
		return "", err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	switch {
	case n >= 6 && string(magic[:6]) == "MTRC2\n":
		return "chunked", nil
	case n >= 5 && string(magic[:5]) == "MTRC1":
		return "varint", nil
	default:
		return "text", nil
	}
}

// readAll materializes a text or varint trace.
func readAll(f *os.File, format string) (*memtrace.Trace, error) {
	br := bufio.NewReaderSize(f, 1<<20)
	if format == "varint" {
		return memtrace.ReadBinary(br)
	}
	return memtrace.ReadText(br)
}

func runConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var (
		format   = fs.String("format", "chunked", "output format: text, varint, or chunked")
		chunkCap = fs.Int("chunk", 0, "references per chunk for -format chunked (0 = default)")
	)
	// Accept positional in/out before or after flags.
	var pos []string
	rest := args
	for len(rest) > 0 {
		if rest[0] != "" && rest[0][0] != '-' {
			pos = append(pos, rest[0])
			rest = rest[1:]
			continue
		}
		fs.Parse(rest)
		rest = fs.Args()
	}
	if len(pos) != 2 {
		fatal(fmt.Errorf("convert needs <in> <out>"))
	}
	in, out := pos[0], pos[1]

	inF, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer inF.Close()
	inFormat, err := sniff(inF)
	if err != nil {
		fatal(err)
	}
	outF, err := os.Create(out)
	if err != nil {
		fatal(err)
	}

	if inFormat == "chunked" && *format == "chunked" {
		// Re-chunk streaming: neither side materializes.
		if err := rechunk(inF, outF, *chunkCap); err != nil {
			outF.Close()
			fatal(err)
		}
	} else {
		var tr *memtrace.Trace
		if inFormat == "chunked" {
			tr, err = memtrace.ReadChunked(bufio.NewReaderSize(inF, 1<<20))
		} else {
			tr, err = readAll(inF, inFormat)
		}
		if err != nil {
			outF.Close()
			fatal(err)
		}
		switch *format {
		case "text":
			err = tr.WriteText(outF)
		case "varint":
			err = tr.WriteBinary(outF)
		case "chunked":
			err = tr.WriteChunked(outF, *chunkCap)
		default:
			err = fmt.Errorf("unknown format %q (want text, varint, or chunked)", *format)
		}
		if err != nil {
			outF.Close()
			fatal(err)
		}
	}
	if err := outF.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %s (%s) → %s (%s)\n", in, inFormat, out, *format)
}

// rechunk streams a chunked trace into a new chunk capacity: the stream
// header gives the processor count, then one pass re-chunks without
// materializing either side.
func rechunk(in *os.File, out io.Writer, chunkCap int) error {
	fi, err := in.Stat()
	if err != nil {
		return err
	}
	sr, err := memtrace.OpenStream(in, fi.Size())
	if err != nil {
		return err
	}
	cw, err := memtrace.NewChunkWriter(out, sr.Procs(), chunkCap)
	if err != nil {
		return err
	}
	if _, err := in.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := memtrace.ScanChunked(in, func(proc int, refs []addr.Ref) error {
		for _, r := range refs {
			if err := cw.Append(proc, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return cw.Close()
}
