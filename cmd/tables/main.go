// Command tables regenerates the paper's evaluation tables.
//
//	tables -table 4.1           # Table 4-1 from the §4.2 closed form
//	tables -table 4.2           # Table 4-2 from the Dubois–Briggs reconstruction
//	tables -table all -compare  # both, with the paper's printed values inline
//	tables -sim -workers 8      # the simulated counterparts, via the sweep engine
//
// With -sim, the analytic grids are replaced by their measured
// counterparts: the same (q × w × n) campaign the paper's §4.3 defers to
// "future simulation studies", executed through the internal/sweep
// orchestration engine (so tables and cmd/sweep share one execution
// substrate and the grids are deterministic for any -workers value).
package main

import (
	"flag"
	"fmt"
	"os"

	"twobit"
	"twobit/internal/model"
	"twobit/internal/obs"
	"twobit/internal/sweep"
)

func main() {
	table := flag.String("table", "all", "which table to print: 4.1, 4.2 or all")
	compare := flag.Bool("compare", false, "print computed values side by side with the paper's")
	cost := flag.Bool("cost", false, "also print the directory hardware-economy comparison (§2.4.2/§3.1)")
	viability := flag.Bool("viability", false, "also print the §4.3 viability boundaries")
	sim := flag.Bool("sim", false, "measure the tables by simulation through the sweep engine instead of the models")
	workers := flag.Int("workers", 1, "worker goroutines for -sim (the grids are identical for any value)")
	refs := flag.Int("refs", 2000, "references per processor for -sim")
	latency := flag.Bool("latency", false, "with -sim, also print Table 4-1 (measured): the per-reference latency attribution matrix (phase × class) from transaction spans")
	flag.Parse()

	if *cost {
		printCost()
		fmt.Println()
	}
	if *viability {
		printViability()
		fmt.Println()
	}

	if *table != "4.1" && *table != "4.2" && *table != "all" {
		fmt.Fprintf(os.Stderr, "tables: unknown table %q (want 4.1, 4.2 or all)\n", *table)
		os.Exit(2)
	}

	if *sim {
		if err := printSim(*table, *workers, *refs, *latency); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		return
	}

	switch *table {
	case "4.1":
		print41(*compare)
	case "4.2":
		print42(*compare)
	case "all":
		print41(*compare)
		fmt.Println()
		print42(*compare)
	}
}

// simQs maps the tables' three sharing levels onto shared-reference
// probabilities, matching experiment E3 (EXPERIMENTS.md).
var simQs = []float64{0.01, 0.05, 0.10}

// simPlan is the measured-counterpart campaign: the two-bit scheme over
// the papers' full (q × w × n) axes.
func simPlan(refs int) *sweep.Plan {
	p := &sweep.Plan{
		Name:        "tables-sim",
		Protocols:   []string{twobit.TwoBit.String()},
		Qs:          simQs,
		Ws:          []float64{0.1, 0.2, 0.3, 0.4},
		Procs:       []int{4, 8, 16, 32, 64},
		RefsPerProc: refs,
		RootSeed:    3,
	}
	p.Normalize()
	return p
}

// printSim regenerates the tables' grids by simulation: one campaign
// through the sweep engine, aggregated once per table. Table 4-1's
// simulated counterpart is the measured useless-command overhead (what a
// full map would not have sent); Table 4-2's is the measured total
// external commands per cache per reference.
func printSim(table string, workers, refs int, latency bool) error {
	plan := simPlan(refs)
	plan.Spans = latency
	recs, err := sweep.Collect(plan, workers)
	if err != nil {
		return err
	}
	if table == "4.1" || table == "all" {
		if err := printSimTable(plan, recs, "useless_per_ref",
			"Table 4-1 (simulated): measured useless commands per cache per memory reference"); err != nil {
			return err
		}
		if latency {
			fmt.Println()
			if err := printLatencyMatrix(recs); err != nil {
				return err
			}
		}
	}
	if table == "all" {
		fmt.Println()
	}
	if table == "4.2" || table == "all" {
		if err := printSimTable(plan, recs, "cmds_per_ref",
			"Table 4-2 (simulated): measured commands received per cache per memory reference"); err != nil {
			return err
		}
	}
	return nil
}

// printSimTable folds the campaign into one table-shaped grid set.
func printSimTable(plan *sweep.Plan, recs []sweep.Record, metric, title string) error {
	grids, failed, err := sweep.Aggregate(plan, recs, metric)
	if err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d runs failed", failed, plan.Size())
	}
	fmt.Println(title)
	cases := []string{"case 1 (low sharing, q=0.01)", "case 2 (moderate sharing, q=0.05)", "case 3 (high sharing, q=0.10)"}
	for i, gs := range grids {
		g := gs.Mean
		g.Title = cases[i] + ":"
		if err := g.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// printLatencyMatrix renders Table 4-1 (measured): for each sharing
// case, the campaign's per-run span snapshots merged into one phase ×
// reference-class latency attribution matrix. The merge is commutative
// and associative, so the matrix is identical for any -workers value.
// The analytic line above each matrix gives the paper's §4.2 overhead
// terms at a representative grid point for side-by-side reading: the
// closed form predicts broadcast overhead (commands), the matrix shows
// where the resulting cycles actually went, phase by phase.
func printLatencyMatrix(recs []sweep.Record) error {
	fmt.Println("Table 4-1 (measured): per-reference latency attribution, phase × class, in sim cycles")
	fmt.Println("(mean/p50/p99 over every reference in the campaign; share = fraction of the class's total latency)")
	cases := model.Table41Cases()
	const refN, refW = 16, 0.3 // analytic reference point: mid-grid
	for i, q := range simQs {
		var snaps []obs.Snapshot
		for _, rec := range recs {
			if rec.Q != q {
				continue
			}
			res, err := rec.Decode()
			if err != nil {
				return err
			}
			if res.Obs == nil {
				return fmt.Errorf("run %d carries no snapshot; campaign ran without spans", rec.RunID)
			}
			snaps = append(snaps, *res.Obs)
		}
		merged, err := obs.MergeAll(snaps...)
		if err != nil {
			return err
		}
		matrix, ok := obs.SpanMatrixFrom(merged)
		if !ok {
			return fmt.Errorf("case q=%g: no span series in the merged snapshot", q)
		}
		c := cases[i]
		fmt.Printf("\ncase %d (%s sharing, q=%g), %d references:\n", i+1, c.Name, q, matrix.Refs())
		fmt.Printf("  analytic §4.2 at n=%d, w=%.1f: T_RM=%.4f T_WM=%.4f T_WH=%.4f T_SUM=%.4f ((n-1)·T_SUM=%.3f)\n",
			refN, refW, model.TRM(c, refN, refW), model.TWM(c, refN, refW),
			model.TWH(c, refN, refW), model.TSum(c, refN, refW), model.Overhead41(c, refN, refW))
		if err := matrix.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func printCost() {
	fmt.Println("Directory storage per block (16-byte blocks), full map vs two-bit:")
	fmt.Printf("%-6s %14s %12s %14s %12s %10s\n",
		"n", "full-map bits", "overhead", "two-bit bits", "overhead", "savings")
	for _, r := range twobit.CostTable(16) {
		fmt.Printf("%-6d %14d %11.1f%% %14d %11.2f%% %9.1fx\n",
			r.Procs, r.FullMapBits, r.FullMapOverhead*100,
			r.TwoBitBits, r.TwoBitOverhead*100, r.SavingsFactor)
	}
	fmt.Println("(§2.4.2's example: 16 procs, 17 bits per 128-bit block = 13.3%,")
	fmt.Println(`"almost 15% extra memory"; the paper's "256 bits" is a misprint.)`)
}

func printViability() {
	fmt.Println("§4.3 viability boundaries: largest n with (n-1)·T_SUM < 1.0:")
	for _, c := range []twobit.SharingCase{twobit.LowSharing, twobit.ModerateSharing, twobit.HighSharing} {
		fmt.Printf("  %-10s", c.Name+":")
		for _, w := range []float64{0.1, 0.2, 0.3, 0.4} {
			fmt.Printf("  w=%.1f → n≤%-3d", w, twobit.MaxViableProcessors(c, w, 1.0))
		}
		fmt.Println()
	}
}

func print41(compare bool) {
	if compare {
		fmt.Print(twobit.CompareTable41())
		fmt.Println("\nKnown defects of the original: the case-1 w=0.3 n=16 cell is")
		fmt.Println("misprinted 0.970 (formula gives 0.070), and case-1 w=0.1 n=4")
		fmt.Println("rounds to 0.001 but is printed 0.000.")
		return
	}
	fmt.Print(twobit.RenderTable41())
}

func print42(compare bool) {
	if compare {
		fmt.Print(twobit.CompareTable42())
		fmt.Println("\nTable 4-2 is a reconstruction: the paper uses the Dubois–Briggs")
		fmt.Println("model [3] whose closed form it does not reproduce; a Markov chain")
		fmt.Println("over one shared block's global state substitutes (see DESIGN.md).")
		return
	}
	fmt.Print(twobit.RenderTable42())
}
