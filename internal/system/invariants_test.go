package system

import (
	"strings"
	"testing"

	"twobit/internal/addr"
)

// Block is addr.Block, aliased for brevity in the corruption helpers.
type Block = addr.Block

// The invariant checkers are load-bearing: every integration test trusts
// them to catch protocol corruption. These tests corrupt a healthy
// machine by hand and assert each checker actually fires.

func healthyMachine(t *testing.T, p Protocol) *Machine {
	t.Helper()
	cfg := DefaultConfig(p, 4)
	m, err := New(cfg, sharingGen(4, 33))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1500); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckerDetectsDoubleModified(t *testing.T) {
	m := healthyMachine(t, TwoBit)
	// Forge a second modified copy of some block another cache holds.
	var victim Block
	found := false
	for b := 0; b < m.space.Blocks && !found; b++ {
		for k := 0; k < 2; k++ {
			if f := m.caches[k].Store().Lookup(Block(b)); f != nil {
				f.Modified = true
				// Plant a duplicate modified copy in the other cache.
				other := m.caches[1-k].Store()
				v := other.Victim(Block(b))
				if v.Valid {
					other.Evict(v)
				}
				other.Fill(v, Block(b), f.Data)
				other.Lookup(Block(b)).Modified = true
				victim = Block(b)
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no cached block to corrupt")
	}
	err := m.bld.checkInvariants(m)
	if err == nil {
		t.Fatalf("checker missed two modified copies of %v", victim)
	}
	if !strings.Contains(err.Error(), "modified") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckerDetectsAbsentWithCopy(t *testing.T) {
	m := healthyMachine(t, TwoBit)
	// Plant a copy of a block whose directory state is Absent.
	tb := m.bld.(*twoBitBuilder)
	var target Block = 0
	found := false
	for b := 0; b < m.space.Blocks; b++ {
		blk := Block(b)
		if tb.ctrls[blk.Module(m.space.Modules)].State(blk) == 0 /* Absent */ {
			if m.gatherCopies(blk) == nil {
				target = blk
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no absent block available")
	}
	store := m.caches[0].Store()
	v := store.Victim(target)
	if v.Valid {
		store.Evict(v)
	}
	memV := tb.ctrls[target.Module(m.space.Modules)].MemVersion(target)
	store.Fill(v, target, memV)
	if err := m.bld.checkInvariants(m); err == nil {
		t.Fatal("checker missed a copy of an Absent block")
	}
}

func TestCheckerDetectsStaleCleanCopy(t *testing.T) {
	m := healthyMachine(t, TwoBit)
	// Find any clean cached copy and corrupt its data version.
	for b := 0; b < m.space.Blocks; b++ {
		for k := range m.caches {
			if f := m.caches[k].Store().Lookup(Block(b)); f != nil && !f.Modified {
				f.Data += 12345
				if err := m.bld.checkInvariants(m); err == nil {
					t.Fatal("checker missed a stale clean copy")
				}
				return
			}
		}
	}
	t.Skip("no clean copy to corrupt")
}

func TestCheckerDetectsFullMapPhantomHolder(t *testing.T) {
	m := healthyMachine(t, FullMap)
	// Plant a copy the exact map does not record.
	fb := m.bld.(*fullMapBuilder)
	for b := 0; b < m.space.Blocks; b++ {
		blk := Block(b)
		ctrl := fb.ctrls[blk.Module(m.space.Modules)]
		holders := ctrl.Holders(blk)
		holderSet := map[int]bool{}
		for _, h := range holders {
			holderSet[h] = true
		}
		for k := range m.caches {
			if !holderSet[k] && m.caches[k].Store().Lookup(blk) == nil && !ctrl.Modified(blk) {
				store := m.caches[k].Store()
				v := store.Victim(blk)
				if v.Valid {
					store.Evict(v)
				}
				store.Fill(v, blk, ctrl.MemVersion(blk))
				if err := m.bld.checkInvariants(m); err == nil {
					t.Fatal("full-map checker missed an unrecorded holder")
				}
				return
			}
		}
	}
	t.Skip("no candidate block")
}
