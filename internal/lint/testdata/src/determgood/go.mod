module determgood

go 1.22
