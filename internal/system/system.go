// Package system assembles complete simulated multiprocessors in the
// organization of Figure 3-1 — n processor-cache pairs and m memory
// controller/module pairs joined by an interconnection network — runs
// workloads through them, verifies coherence with a linearizability
// oracle and protocol-specific invariant checks, and reports the paper's
// metrics (commands received per memory reference, useless commands,
// stolen cache cycles, broadcast counts, network traffic).
package system

import (
	"errors"
	"fmt"
	"io"

	"twobit/internal/addr"
	"twobit/internal/cache"
	"twobit/internal/core"
	"twobit/internal/network"
	"twobit/internal/obs"
	"twobit/internal/proto"
	"twobit/internal/sim"
	"twobit/internal/stats"
	"twobit/internal/workload"
)

// Protocol selects the coherence scheme a machine runs.
type Protocol uint8

const (
	// TwoBit is the paper's contribution (§3): the two-bit global directory
	// with broadcast BROADINV/BROADQUERY.
	TwoBit Protocol = iota
	// FullMap is the Censier–Feautrier n+1-bit directory (§2.4.2).
	FullMap
	// FullMapExclusive is FullMap plus the Yen–Fu local state (§2.4.3).
	FullMapExclusive
	// Classical is the broadcast write-through scheme (§2.3).
	Classical
	// Duplication is Tang's central cache-directory duplication (§2.4.1).
	Duplication
	// WriteOnce is Goodman's bus scheme (§2.5); it forces NetKind Bus.
	WriteOnce
	// Software is the static scheme (§2.2): shared blocks are not cached.
	Software
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case TwoBit:
		return "two-bit"
	case FullMap:
		return "full-map"
	case FullMapExclusive:
		return "full-map+E"
	case Classical:
		return "classical"
	case Duplication:
		return "duplication"
	case WriteOnce:
		return "write-once"
	case Software:
		return "software"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// NetKind selects the interconnection network.
type NetKind uint8

const (
	// CrossbarNet is the ideal point-to-point network.
	CrossbarNet NetKind = iota
	// BusNet is the single shared snooping bus.
	BusNet
	// OmegaNet is the blocking multistage network.
	OmegaNet
)

// String names the network kind.
func (k NetKind) String() string {
	switch k {
	case CrossbarNet:
		return "crossbar"
	case BusNet:
		return "bus"
	case OmegaNet:
		return "omega"
	}
	return fmt.Sprintf("NetKind(%d)", uint8(k))
}

// Config describes a machine.
type Config struct {
	Protocol Protocol
	Procs    int // n: processor-cache pairs
	Modules  int // memory modules (with one controller each)

	CacheSets   int
	CacheAssoc  int
	CachePolicy cache.ReplacementPolicy
	// DuplicateDirectory enables the §4.4 parallel-controller enhancement
	// at every cache.
	DuplicateDirectory bool

	Net        NetKind
	NetLatency sim.Time // crossbar latency / omega hop time
	NetJitter  sim.Time // max random extra delay per message (CrossbarNet only)
	BusCycle   sim.Time // bus occupancy per transaction (BusNet only)

	Lat  proto.Latencies
	Mode proto.ConcurrencyMode

	// TranslationBufferSize enables the §4.4 owner cache (TwoBit only).
	TranslationBufferSize int
	// CoreHooks injects deliberate two-bit protocol defects so
	// model-checker counterexamples replay in the simulator (test-only;
	// nil in production). TwoBit only.
	CoreHooks *core.BugHooks
	// DisableCleanEject drops EJECT(·,·,"read"), the paper's optional part
	// of the replacement protocol.
	DisableCleanEject bool

	// DMA adds uncached I/O devices (TwoBit and FullMap protocols only).
	DMA DMAConfig

	Seed uint64
	// Oracle enables the linearizability checker (small time overhead).
	Oracle bool
	// TraceWriter, when non-nil, receives a log of every network message —
	// a protocol debugging aid.
	TraceWriter io.Writer
	// Obs, when non-nil, records sim-time events and per-component
	// metrics for this run (see internal/obs). Recording is passive: a
	// machine with and without a recorder produces identical Results
	// (modulo the Results.Obs snapshot itself).
	Obs *obs.Recorder
}

// DefaultConfig returns a ready-to-run configuration for n processors.
func DefaultConfig(protocol Protocol, procs int) Config {
	return Config{
		Protocol:   protocol,
		Procs:      procs,
		Modules:    4,
		CacheSets:  32,
		CacheAssoc: 4,
		Net:        CrossbarNet,
		NetLatency: 4,
		BusCycle:   4,
		Lat:        proto.DefaultLatencies(),
		Mode:       proto.PerBlock,
		Seed:       1,
		Oracle:     true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("system: Procs must be ≥ 1, got %d", c.Procs)
	}
	if c.Procs > 64 {
		return fmt.Errorf("system: Procs must be ≤ 64 (directory word width), got %d", c.Procs)
	}
	if c.Modules < 1 {
		return fmt.Errorf("system: Modules must be ≥ 1, got %d", c.Modules)
	}
	if c.CacheSets < 1 || c.CacheAssoc < 1 {
		return fmt.Errorf("system: cache geometry %dx%d invalid", c.CacheSets, c.CacheAssoc)
	}
	if c.Protocol == WriteOnce && c.Net != BusNet {
		return errors.New("system: the write-once protocol requires the bus network")
	}
	if c.Protocol == Duplication && c.Modules != 1 {
		return errors.New("system: the duplication protocol is centralized; set Modules = 1")
	}
	if c.TranslationBufferSize > 0 && c.Protocol != TwoBit {
		return errors.New("system: translation buffer applies to the two-bit protocol only")
	}
	if c.CoreHooks != nil && c.Protocol != TwoBit {
		return errors.New("system: core hooks apply to the two-bit protocol only")
	}
	if err := c.DMA.Validate(); err != nil {
		return err
	}
	if c.DMA.Devices > 0 {
		switch c.Protocol {
		case TwoBit, FullMap, FullMapExclusive:
		default:
			return fmt.Errorf("system: DMA devices are supported by the directory protocols, not %v", c.Protocol)
		}
	}
	return nil
}

// builder constructs a protocol's cache and controller sides. Each
// protocol package is adapted by one builder in builders.go.
type builder interface {
	// buildCaches constructs all cache sides (attached to the network).
	buildCaches(m *Machine) []proto.CacheSide
	// buildCtrls constructs all memory controllers (attached).
	buildCtrls(m *Machine) []proto.MemSide
	// reset restores every component the builder constructed to its
	// freshly-constructed state under m's current (already updated)
	// config, without re-attaching anything to the network. The machine
	// shape — protocol, topology, address space, cache geometry — must be
	// unchanged since construction; value parameters (latencies, seeds,
	// policies, hooks) are re-derived from m.cfg.
	reset(m *Machine)
	// checkInvariants verifies protocol-specific global invariants at
	// quiescence.
	checkInvariants(m *Machine) error
}

// Machine is an assembled multiprocessor.
type Machine struct {
	cfg    Config
	gen    workload.Generator
	kernel *sim.Kernel
	net    network.Network
	topo   proto.Topology
	space  addr.Space
	bld    builder

	caches []proto.CacheSide
	ctrls  []proto.MemSide
	dmas   []*dmaDevice
	oracle *Oracle
	strict bool // strict (linearizability) oracle mode; see Oracle

	// drivers holds one procDriver per processor, grown on first use and
	// reused across runs (and across resets of a pooled machine), so
	// issuing a processor's reference stream allocates nothing after the
	// first run.
	drivers []*procDriver

	nextVersion uint64
	completed   int
	issuedRefs  uint64
	errs        []error
	refDone     func(p int) // replay hook: runs as each reference completes

	latencies       stats.Histogram // per-reference latency, cycles
	sharedLatencies stats.Histogram // latency of shared references only

	copyScratch []copyView // gatherCopies buffer, reused across blocks and runs

	obsLatency *obs.Histogram // "sys/ref_latency_cycles" (nil when Obs off)
}

// New assembles a machine for cfg running gen. The address space is sized
// from the generator.
func New(cfg Config, gen workload.Generator) (*Machine, error) {
	return newMachine(cfg, gen, nil, nil, nil)
}

// NewOnKernel is New on a caller-supplied kernel, so one kernel's event
// storage (grown to its high-water mark) can be reused across
// simulations without reallocating. The kernel must be Reset between
// machines; a run on a reused kernel is byte-identical to a run on a
// fresh one (TestKernelResetReuse pins this). Note that a machine with
// cfg.Obs set installs its profiling hook on the kernel, and Reset keeps
// hooks — call SetHook(nil) before reusing such a kernel without obs.
func NewOnKernel(cfg Config, gen workload.Generator, k *sim.Kernel) (*Machine, error) {
	return newMachine(cfg, gen, k, nil, nil)
}

// newMachine is New with an optional kernel, reusable oracle (Reset by
// the caller; nil allocates a fresh one) and network override; the
// model-checking tests use the latter to substitute a delivery-choice
// network.
func newMachine(cfg Config, gen workload.Generator, kernel *sim.Kernel, oracle *Oracle, netFactory func(*sim.Kernel) network.Network) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	blocks := gen.Blocks()
	if blocks < 1 {
		return nil, fmt.Errorf("system: generator spans %d blocks", blocks)
	}
	if kernel == nil {
		kernel = &sim.Kernel{}
	}
	m := &Machine{
		cfg:    cfg,
		gen:    gen,
		kernel: kernel,
		topo:   proto.Topology{Caches: cfg.Procs, Modules: cfg.Modules, DMA: cfg.DMA.Devices},
		space:  addr.Space{Blocks: blocks, Modules: cfg.Modules},
	}
	switch {
	case netFactory != nil:
		m.net = netFactory(m.kernel)
	case cfg.Net == BusNet:
		m.net = network.NewBus(m.kernel, cfg.BusCycle, cfg.NetLatency)
	case cfg.Net == OmegaNet:
		m.net = network.NewOmega(m.kernel, m.topo.Nodes(), maxTime(1, cfg.NetLatency))
	default:
		m.net = network.NewJitterCrossbar(m.kernel, cfg.NetLatency, cfg.NetJitter, cfg.Seed^0xA5A5)
	}
	if cfg.TraceWriter != nil {
		m.net = &traceNet{inner: m.net, m: m, w: cfg.TraceWriter}
	}
	if cfg.Obs != nil {
		cfg.Obs.SetClock(m.kernel.Now)
		m.kernel.SetHook(obs.NewKernelProfile(cfg.Obs))
		m.obsLatency = cfg.Obs.Histogram("sys/ref_latency_cycles", 8)
		m.net.Observe(cfg.Obs, m.trackName)
	}
	if cfg.Oracle {
		if oracle != nil {
			m.oracle = oracle
		} else {
			m.oracle = NewOracle()
		}
		// Strict linearizability holds only when invalidations and grants
		// travel with equal delay; the blocking Omega network and the
		// jittered crossbar do not guarantee that, so they get the (still
		// paper-exact) coherence check. See the Oracle doc.
		m.strict = cfg.Net != OmegaNet && cfg.NetJitter == 0
	}
	bld, err := builderFor(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	m.bld = bld
	m.caches = bld.buildCaches(m)
	m.ctrls = bld.buildCtrls(m)
	for d := 0; d < cfg.DMA.Devices; d++ {
		m.dmas = append(m.dmas, newDMADevice(m, d))
	}
	return m, nil
}

// poolable reports whether cfg can run on a pooled machine. The three
// excluded features bind external recorders or wrappers at construction
// time (the obs recorder threads through every component, the trace
// writer wraps the network, and bug hooks rewire controller defenses),
// so configs using them rebuild the machine instead. None of them appear
// on the sweep hot path unless instrumentation was requested.
func poolable(cfg Config) bool {
	return cfg.Obs == nil && cfg.TraceWriter == nil && cfg.CoreHooks == nil
}

// machineShape is the structural identity of a machine: the parameters
// that decide what gets constructed and wired (component counts, array
// sizes, network topology, attachment graph). Two configs with equal
// shapes differ only in value parameters — seeds, latencies, policies,
// oracle on/off — which Machine.reset re-derives without rebuilding.
type machineShape struct {
	protocol Protocol
	procs    int
	modules  int
	sets     int
	assoc    int
	blocks   int
	net      NetKind
	dma      int
	tb       bool // translation buffer present (size > 0)
}

// shapeOf computes the shape of cfg over an address space of blocks
// blocks.
func shapeOf(cfg Config, blocks int) machineShape {
	return machineShape{
		protocol: cfg.Protocol,
		procs:    cfg.Procs,
		modules:  cfg.Modules,
		sets:     cfg.CacheSets,
		assoc:    cfg.CacheAssoc,
		blocks:   blocks,
		net:      cfg.Net,
		dma:      cfg.DMA.Devices,
		tb:       cfg.TranslationBufferSize > 0,
	}
}

// reset restores a pooled machine to its freshly-constructed state under
// cfg, which must be poolable, validated, and shape-equal to the
// machine's construction config (the Runner guarantees all three). The
// caller owns the kernel and resets it separately. Reset runs are
// byte-identical to fresh machines — pinned by TestRunnerReuse and the
// randomized property test.
func (m *Machine) reset(cfg Config, gen workload.Generator, oracle *Oracle) {
	m.cfg = cfg
	m.gen = gen
	m.oracle = oracle
	m.strict = oracle != nil && cfg.Net != OmegaNet && cfg.NetJitter == 0
	switch n := m.net.(type) {
	case *network.Crossbar:
		n.Reset(cfg.NetLatency, cfg.NetJitter, cfg.Seed^0xA5A5)
	case *network.Bus:
		n.Reset(cfg.BusCycle, cfg.NetLatency)
	case *network.Omega:
		n.Reset(maxTime(1, cfg.NetLatency))
	default:
		panic(fmt.Sprintf("system: cannot reset network %T — rebuild instead", m.net))
	}
	m.bld.reset(m)
	for _, d := range m.dmas {
		d.reset()
	}
	m.nextVersion = 0
	m.completed = 0
	m.issuedRefs = 0
	m.errs = m.errs[:0]
	m.refDone = nil
	m.latencies.Reset()
	m.sharedLatencies.Reset()
}

// trackName maps a network node id to its observability track name,
// following the topology's layout: caches first, then controllers, then
// DMA devices.
func (m *Machine) trackName(id network.NodeID) string {
	if k, ok := m.topo.CacheIndex(id); ok {
		return fmt.Sprintf("cache%d", k)
	}
	j := int(id) - m.topo.Caches
	if j < m.topo.Modules {
		return fmt.Sprintf("ctrl%d", j)
	}
	return fmt.Sprintf("dma%d", j-m.topo.Modules)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// Kernel exposes the machine's clock (read-only use intended).
func (m *Machine) Kernel() *sim.Kernel { return m.kernel }

// Network exposes the interconnection network's statistics.
func (m *Machine) Network() network.Network { return m.net }

// Oracle returns the linearizability oracle, or nil when disabled.
func (m *Machine) Oracle() *Oracle { return m.oracle }

// CacheSide returns cache k's protocol agent.
func (m *Machine) CacheSide(k int) proto.CacheSide { return m.caches[k] }

// MemSide returns memory controller j.
func (m *Machine) MemSide(j int) proto.MemSide { return m.ctrls[j] }

// commitHook returns the oracle hook (nil when the oracle is off).
func (m *Machine) commitHook() proto.CommitFunc {
	if m.oracle == nil {
		return nil
	}
	return m.oracle.Commit
}

// cacheConfig builds the cache geometry for cache k.
func (m *Machine) cacheConfig(k int) cache.Config {
	return cache.Config{
		Sets:               m.cfg.CacheSets,
		Assoc:              m.cfg.CacheAssoc,
		Policy:             m.cfg.CachePolicy,
		DuplicateDirectory: m.cfg.DuplicateDirectory,
		Seed:               m.cfg.Seed ^ uint64(k)<<32,
	}
}

// Run drives every processor through refsPerProc references and returns
// the aggregated results. It returns an error if the simulation deadlocks,
// a load violates coherence, or a protocol invariant fails at quiescence.
func (m *Machine) Run(refsPerProc int) (Results, error) {
	if refsPerProc < 1 {
		return Results{}, fmt.Errorf("system: refsPerProc must be ≥ 1, got %d", refsPerProc)
	}
	for p := 0; p < m.cfg.Procs; p++ {
		m.issue(p, refsPerProc)
	}
	for _, d := range m.dmas {
		d.issue(refsPerProc)
	}
	want := m.cfg.Procs + len(m.dmas)
	m.kernel.Run()
	if m.completed != want {
		return Results{}, fmt.Errorf("system: deadlock: %d of %d processors/devices finished after %d events",
			m.completed, want, m.kernel.Processed())
	}
	if len(m.errs) > 0 {
		return Results{}, fmt.Errorf("system: %d coherence violations, first: %w", len(m.errs), m.errs[0])
	}
	if err := m.bld.checkInvariants(m); err != nil {
		return Results{}, fmt.Errorf("system: invariant violation at quiescence: %w", err)
	}
	return m.collect(refsPerProc), nil
}

// issue chains one processor's references through a procDriver: each new
// reference is issued when the previous one completes. Drivers are
// created on first use and reused by later runs — issue() reinitializes
// every per-reference field, so a reused driver behaves identically to a
// fresh one.
func (m *Machine) issue(p, remaining int) {
	for len(m.drivers) <= p {
		m.drivers = append(m.drivers, newProcDriver(m, len(m.drivers), 0))
	}
	d := m.drivers[p]
	d.remaining = remaining
	d.issue()
}

// procDriver drives one simulated processor through its reference
// stream. The per-reference state lives in the driver and the completion
// callback is bound once at construction, so issuing a reference
// allocates nothing — the driver itself is the only allocation, one per
// processor per run.
type procDriver struct {
	m           *Machine
	p           int
	remaining   int
	ref         addr.Ref
	version     uint64
	issueLatest uint64
	issuedAt    sim.Time
	done        func(uint64) // complete, bound once
}

func newProcDriver(m *Machine, p, remaining int) *procDriver {
	d := &procDriver{m: m, p: p, remaining: remaining}
	d.done = d.complete
	return d
}

// issue hands the processor's next reference to its cache agent. When
// transaction spans are enabled the agent opens the reference's span in
// Access, at this same tick, and closes it when done runs — so span
// end-to-end latencies cover exactly the issuedAt → complete interval
// measured below.
func (d *procDriver) issue() {
	m := d.m
	ref := m.gen.Next(d.p)
	if int(ref.Block) >= m.space.Blocks {
		panic(fmt.Sprintf("system: generator produced %v beyond space of %d blocks", ref.Block, m.space.Blocks))
	}
	m.issuedRefs++
	d.ref = ref
	d.version = 0
	if ref.Write {
		m.nextVersion++
		d.version = m.nextVersion
	}
	d.issueLatest = 0
	if m.oracle != nil {
		d.issueLatest = m.oracle.Latest(ref.Block)
	}
	d.issuedAt = m.kernel.Now()
	m.caches[d.p].Access(ref, d.version, d.done)
}

func (d *procDriver) complete(got uint64) {
	m := d.m
	lat := uint64(m.kernel.Now() - d.issuedAt)
	m.latencies.Observe(lat)
	m.obsLatency.Observe(lat)
	if d.ref.Shared {
		m.sharedLatencies.Observe(lat)
	}
	if m.oracle != nil {
		var err error
		if d.ref.Write {
			err = m.oracle.NoteWrite(d.p, d.ref.Block, d.version)
		} else {
			err = m.oracle.CheckLoad(d.p, d.ref.Block, d.issueLatest, got, m.strict)
		}
		if err != nil {
			m.errs = append(m.errs, fmt.Errorf("proc %d: %w", d.p, err))
		}
	}
	if m.refDone != nil {
		m.refDone(d.p)
	}
	if d.remaining > 1 {
		d.remaining--
		d.issue()
	} else {
		m.completed++
	}
}
