// Package software implements the static, software-enforced solution of
// §2.2: every memory block is tagged (at compile/link time, modeled by the
// workload's Shared annotation) as private or public. Private blocks are
// cached write-back as usual; public (writeable shared) blocks are never
// loaded into any cache — "on a cache miss to a public block, no loading in
// the cache takes place, and hence the public data is always up-to-date in
// main memory". There is no coherence machinery at all; the cost is a full
// memory round trip on every shared reference.
package software

import (
	"fmt"

	"twobit/internal/addr"
	"twobit/internal/cache"
	"twobit/internal/memory"
	"twobit/internal/msg"
	"twobit/internal/network"
	"twobit/internal/proto"
	"twobit/internal/sim"
)

// AgentConfig configures a software-scheme cache agent.
type AgentConfig struct {
	Index  int
	Topo   proto.Topology
	Lat    proto.Latencies
	Commit proto.CommitFunc
}

// Agent caches private blocks write-back and bypasses the cache for shared
// blocks.
type Agent struct {
	cfg    AgentConfig
	kernel *sim.Kernel
	net    network.Network
	store  *cache.Cache
	stats  proto.CacheSideStats

	pend *pendingOp
}

type pendingOp struct {
	ref     addr.Ref
	version uint64
	done    func(uint64)
}

// NewAgent wires the agent to the network.
func NewAgent(cfg AgentConfig, kernel *sim.Kernel, net network.Network, store *cache.Cache) *Agent {
	a := &Agent{cfg: cfg, kernel: kernel, net: net, store: store}
	net.Attach(cfg.Topo.CacheNode(cfg.Index), a)
	return a
}

// Reset restores the agent to its freshly-constructed state under cfg,
// keeping the network attachment (Index and Topo must match
// construction). The cache store is reset separately by its owner.
func (a *Agent) Reset(cfg AgentConfig) {
	if cfg.Index != a.cfg.Index || cfg.Topo != a.cfg.Topo {
		panic("software: Agent.Reset shape differs from construction")
	}
	a.cfg = cfg
	a.stats = proto.CacheSideStats{}
	a.pend = nil
}

// Store implements proto.CacheSide.
func (a *Agent) Store() *cache.Cache { return a.store }

// SideStats implements proto.CacheSide.
func (a *Agent) SideStats() *proto.CacheSideStats { return &a.stats }

func (a *Agent) node() network.NodeID { return a.cfg.Topo.CacheNode(a.cfg.Index) }

// Access implements proto.CacheSide.
func (a *Agent) Access(ref addr.Ref, writeVersion uint64, done func(uint64)) {
	if a.pend != nil {
		panic(fmt.Sprintf("software: cache %d: overlapping references", a.cfg.Index))
	}
	a.stats.References.Inc()
	if ref.Write {
		a.stats.Writes.Inc()
	} else {
		a.stats.Reads.Inc()
	}
	ctrl := a.cfg.Topo.CtrlFor(ref.Block)
	if ref.Shared {
		// Public block: uncached, always served by memory.
		a.pend = &pendingOp{ref: ref, version: writeVersion, done: done}
		kind := msg.KindUncachedRead
		if ref.Write {
			kind = msg.KindUncachedWrite
		}
		a.net.Send(a.node(), ctrl, msg.Message{
			Kind: kind, Block: ref.Block, Cache: a.cfg.Index, Data: writeVersion,
		})
		return
	}
	// Private block: ordinary uniprocessor write-back cache behavior.
	if f := a.store.Access(ref.Block); f != nil {
		if ref.Write {
			f.Data = writeVersion
			f.Modified = true
			if a.cfg.Commit != nil {
				a.cfg.Commit(ref.Block, writeVersion)
			}
			a.kernel.After(a.cfg.Lat.CacheHit, func() { done(writeVersion) })
			return
		}
		v := f.Data
		a.kernel.After(a.cfg.Lat.CacheHit, func() { done(v) })
		return
	}
	a.evictFor(ref.Block)
	a.pend = &pendingOp{ref: ref, version: writeVersion, done: done}
	a.net.Send(a.node(), ctrl, msg.Message{
		Kind: msg.KindRequest, Block: ref.Block, Cache: a.cfg.Index, RW: msg.Read,
	})
}

func (a *Agent) evictFor(b addr.Block) {
	victim := a.store.Victim(b)
	if !victim.Valid {
		return
	}
	old := victim.Block
	if victim.Modified {
		a.stats.EvictionsDirty.Inc()
		ctrl := a.cfg.Topo.CtrlFor(old)
		a.net.Send(a.node(), ctrl, msg.Message{Kind: msg.KindEject, Block: old, Cache: a.cfg.Index, RW: msg.Write})
		a.net.Send(a.node(), ctrl, msg.Message{Kind: msg.KindPut, Block: old, Cache: a.cfg.Index, Data: victim.Data})
	} else {
		a.stats.EvictionsClean.Inc()
	}
	a.store.Evict(victim)
}

// Deliver implements network.Handler.
func (a *Agent) Deliver(src network.NodeID, m msg.Message) {
	if m.Kind != msg.KindGet {
		panic(fmt.Sprintf("software: cache %d: unexpected %v", a.cfg.Index, m))
	}
	if a.pend == nil {
		panic(fmt.Sprintf("software: cache %d: unsolicited %v", a.cfg.Index, m))
	}
	p := a.pend
	a.pend = nil
	if p.ref.Shared {
		// Uncached completion; nothing enters the cache.
		a.kernel.After(a.cfg.Lat.CacheHit, func() { p.done(m.Data) })
		return
	}
	a.evictFor(p.ref.Block)
	victim := a.store.Victim(p.ref.Block)
	a.store.Fill(victim, p.ref.Block, m.Data)
	if p.ref.Write {
		f := a.store.Lookup(p.ref.Block)
		f.Modified = true
		f.Data = p.version
		if a.cfg.Commit != nil {
			a.cfg.Commit(p.ref.Block, p.version)
		}
		a.kernel.After(a.cfg.Lat.CacheHit, func() { p.done(p.version) })
		return
	}
	a.kernel.After(a.cfg.Lat.CacheHit, func() { p.done(m.Data) })
}

// Config configures a software-scheme memory controller.
type Config struct {
	Module int
	Topo   proto.Topology
	Space  addr.Space
	Lat    proto.Latencies
	Commit proto.CommitFunc
}

// Controller serves uncached shared accesses and private fills/write-backs.
// Shared writes linearize at the controller on arrival, which (commands
// being processed atomically per delivery) keeps the scheme coherent
// without any protocol.
type Controller struct {
	cfg    Config
	kernel *sim.Kernel
	net    network.Network
	mem    *memory.Module
	stats  proto.CtrlStats
}

// New wires the controller to the network.
func New(cfg Config, kernel *sim.Kernel, net network.Network, mem *memory.Module) *Controller {
	c := &Controller{cfg: cfg, kernel: kernel, net: net, mem: mem}
	net.Attach(cfg.Topo.CtrlNode(cfg.Module), c)
	return c
}

// Reset restores the controller to its freshly-constructed state under
// cfg, keeping the network attachment (Module, Topo and Space must match
// construction).
func (c *Controller) Reset(cfg Config) {
	if cfg.Module != c.cfg.Module || cfg.Topo != c.cfg.Topo || cfg.Space != c.cfg.Space {
		panic("software: Controller.Reset shape differs from construction")
	}
	c.cfg = cfg
	c.stats = proto.CtrlStats{}
}

// CtrlStats implements proto.MemSide.
func (c *Controller) CtrlStats() *proto.CtrlStats { return &c.stats }

// MemVersion returns memory's version of b, for invariants.
func (c *Controller) MemVersion(b addr.Block) uint64 { return c.mem.Read(b) }

func (c *Controller) node() network.NodeID { return c.cfg.Topo.CtrlNode(c.cfg.Module) }

func (c *Controller) reply(k int, b addr.Block, v uint64) {
	c.kernel.After(c.cfg.Lat.Memory, func() {
		c.net.Send(c.node(), c.cfg.Topo.CacheNode(k), msg.Message{
			Kind: msg.KindGet, Block: b, Cache: k, Data: v,
		})
	})
}

// Deliver implements network.Handler.
func (c *Controller) Deliver(src network.NodeID, m msg.Message) {
	switch m.Kind {
	case msg.KindUncachedRead:
		c.stats.Requests.Inc()
		c.stats.ReadMisses.Inc()
		c.reply(m.Cache, m.Block, c.mem.Read(m.Block))
	case msg.KindUncachedWrite:
		c.stats.Requests.Inc()
		c.stats.WriteMisses.Inc()
		// Linearization point: the write is performed on arrival.
		c.mem.Write(m.Block, m.Data)
		if c.cfg.Commit != nil {
			c.cfg.Commit(m.Block, m.Data)
		}
		c.reply(m.Cache, m.Block, m.Data)
	case msg.KindRequest: // private fill
		c.stats.Requests.Inc()
		c.reply(m.Cache, m.Block, c.mem.Read(m.Block))
	case msg.KindEject:
		c.stats.Ejects.Inc() // data arrives in the following put
	case msg.KindPut:
		c.mem.Write(m.Block, m.Data)
	default:
		panic(fmt.Sprintf("software: controller %d: unexpected %v", c.cfg.Module, m))
	}
}
